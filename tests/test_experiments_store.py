"""Tests for the persistent result store and its serialisation."""

import json

import pytest

from repro.experiments.config import make_session_config
from repro.experiments.runner import run_pair
from repro.experiments.store import (
    MissingResultError,
    ResultStore,
    config_from_dict,
    config_to_dict,
    pair_fingerprint,
    session_result_from_dict,
    session_result_to_dict,
    sweep_fingerprint,
    sweep_from_dict,
    sweep_to_dict,
)
from repro.experiments.sweeps import clear_sweep_cache, run_size_sweep


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_sweep_cache()
    yield
    clear_sweep_cache()


def _tiny(n=36, seed=2, **overrides):
    overrides.setdefault("max_time", 70.0)
    overrides.setdefault("old_stream_segments", 400)
    overrides.setdefault("lookahead", 120)
    return make_session_config(n, seed=seed, **overrides)


OVERRIDES = {"max_time": 70.0, "old_stream_segments": 400, "lookahead": 120}


# --------------------------------------------------------------------------- #
# fingerprints and config serialisation
# --------------------------------------------------------------------------- #
def test_config_round_trips_through_dict():
    config = _tiny(dynamic=True)
    rebuilt = config_from_dict(config_to_dict(config))
    assert rebuilt == config


def test_pair_fingerprint_is_stable_and_algorithm_insensitive():
    config = _tiny()
    assert pair_fingerprint(config) == pair_fingerprint(config)
    # a pair holds both algorithms, so the key must not depend on the field
    assert pair_fingerprint(config.with_algorithm("normal")) == pair_fingerprint(config)


def test_pair_fingerprint_changes_with_seed_config_and_version():
    config = _tiny()
    assert pair_fingerprint(_tiny(seed=3)) != pair_fingerprint(config)
    assert pair_fingerprint(_tiny(n=40)) != pair_fingerprint(config)
    assert pair_fingerprint(config, version="other") != pair_fingerprint(config)


def test_sweep_fingerprint_covers_all_parameters():
    base = sweep_fingerprint([30, 40], dynamic=False, seed=0, repetitions=1)
    assert sweep_fingerprint([30, 40], dynamic=False, seed=0, repetitions=1) == base
    assert sweep_fingerprint([30], dynamic=False, seed=0, repetitions=1) != base
    assert sweep_fingerprint([30, 40], dynamic=True, seed=0, repetitions=1) != base
    assert sweep_fingerprint([30, 40], dynamic=False, seed=1, repetitions=1) != base
    assert sweep_fingerprint([30, 40], dynamic=False, seed=0, repetitions=2) != base
    assert sweep_fingerprint([30, 40], dynamic=False, seed=0, repetitions=1,
                             overrides={"max_time": 70.0}) != base
    # constituent pair keys rotate the sweep key (defaults changes propagate)
    assert sweep_fingerprint([30, 40], dynamic=False, seed=0, repetitions=1,
                             pair_keys=["pair-abc", "pair-def"]) != base


# --------------------------------------------------------------------------- #
# result serialisation
# --------------------------------------------------------------------------- #
def test_session_result_round_trips_exactly():
    pair = run_pair(_tiny())
    for result in (pair.normal, pair.fast):
        rebuilt = session_result_from_dict(
            json.loads(json.dumps(session_result_to_dict(result)))
        )
        assert rebuilt.config == result.config
        assert rebuilt.metrics == result.metrics
        assert rebuilt.switch_plan == result.switch_plan
        assert rebuilt.overhead_ratio == result.overhead_ratio
        assert rebuilt.overhead_series == result.overhead_series
        assert rebuilt.n_peers == result.n_peers
        assert rebuilt.n_rounds == result.n_rounds
        assert rebuilt.stop_reason == result.stop_reason


def test_sweep_round_trips_exactly_through_json():
    sweep = run_size_sweep([30, 36], seed=1, repetitions=2, overrides=OVERRIDES)
    rebuilt = sweep_from_dict(json.loads(json.dumps(sweep_to_dict(sweep))))
    assert rebuilt == sweep  # bit-identical floats, exact dataclass equality


# --------------------------------------------------------------------------- #
# the store itself
# --------------------------------------------------------------------------- #
def test_store_save_load_pair(tmp_path):
    store = ResultStore(tmp_path)
    config = _tiny()
    pair = run_pair(config, store=store)
    key = pair_fingerprint(config)
    assert store.contains(key)
    loaded = store.load_pair(key)
    assert loaded is not None
    normal, fast = loaded
    assert normal.metrics == pair.normal.metrics
    assert fast.metrics == pair.fast.metrics


def test_run_pair_replays_from_store_without_simulating(tmp_path, monkeypatch):
    store = ResultStore(tmp_path)
    config = _tiny()
    first = run_pair(config, store=store)

    import repro.experiments.runner as runner_module

    def _boom(config):
        raise AssertionError("simulated despite a warm store")

    monkeypatch.setattr(runner_module, "run_single", _boom)
    second = run_pair(config, store=store)
    assert second.normal.metrics == first.normal.metrics
    assert second.fast.metrics == first.fast.metrics


def test_replay_only_store_raises_on_miss(tmp_path):
    store = ResultStore(tmp_path, replay_only=True)
    with pytest.raises(MissingResultError):
        run_pair(_tiny(), store=store)


def test_corrupt_documents_are_treated_as_misses(tmp_path):
    store = ResultStore(tmp_path)
    key = pair_fingerprint(_tiny())
    store.path_for(key).write_text("{not json", encoding="utf-8")
    assert store.load(key) is None
    assert not store.contains(key)
    # entries() still lists (and labels) the unreadable document
    kinds = [entry.kind for entry in store.entries()]
    assert kinds == ["corrupt"]


def test_store_entries_and_clear(tmp_path):
    store = ResultStore(tmp_path)
    run_size_sweep([30], seed=2, repetitions=1, overrides=OVERRIDES, store=store)
    entries = store.entries()
    assert sorted(entry.kind for entry in entries) == ["pair", "sweep"]
    assert all(entry.size_bytes > 0 for entry in entries)
    assert len(store) == 2
    assert store.clear() == 2
    assert len(store) == 0


def test_clear_leaves_unrelated_files_alone(tmp_path):
    store = ResultStore(tmp_path)
    unrelated = tmp_path / "notes.json"
    unrelated.write_text("{}", encoding="utf-8")
    run_size_sweep([30], seed=2, repetitions=1, overrides=OVERRIDES, store=store)
    assert "notes" not in store.keys()  # foreign .json files are not entries
    assert store.clear() == 2
    assert unrelated.exists()  # only pair-*/sweep-* documents were deleted


def test_sweep_through_store_replays_exactly(tmp_path, monkeypatch):
    store = ResultStore(tmp_path)
    kwargs = dict(seed=2, repetitions=2, overrides=OVERRIDES)
    first = run_size_sweep([30, 36], store=store, **kwargs)

    import repro.experiments.runner as runner_module

    monkeypatch.setattr(
        runner_module, "run_single",
        lambda config: (_ for _ in ()).throw(AssertionError("re-simulated")),
    )
    second = run_size_sweep([30, 36], store=store, **kwargs)
    assert second == first

    # even with the aggregated sweep entry removed, the pairs replay
    for key in store.keys():
        if key.startswith("sweep-"):
            store.path_for(key).unlink()
    third = run_size_sweep([30, 36], store=store, **kwargs)
    assert third == first
