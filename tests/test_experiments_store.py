"""Tests for the persistent result store and its serialisation."""

import json

import pytest

from repro.experiments.config import make_session_config
from repro.experiments.runner import run_pair
from repro.experiments.store import (
    STORE_BACKENDS,
    MissingResultError,
    ResultStore,
    config_from_dict,
    config_to_dict,
    migrate_store,
    open_store,
    pair_fingerprint,
    session_result_from_dict,
    session_result_to_dict,
    sweep_fingerprint,
    sweep_from_dict,
    sweep_to_dict,
)
from repro.experiments.sweeps import clear_sweep_cache, run_size_sweep


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_sweep_cache()
    yield
    clear_sweep_cache()


@pytest.fixture(params=STORE_BACKENDS)
def any_store(request, tmp_path):
    """One store per backend: the whole contract suite runs against both."""
    return open_store(tmp_path, backend=request.param)


def _corrupt(store, key):
    """Plant an unparsable document under ``key``, whatever the backend."""
    if store.backend == "json":
        store.path_for(key).write_text("{not json", encoding="utf-8")
    else:
        with store._connect() as connection:
            connection.execute(
                "INSERT OR REPLACE INTO documents "
                "(key, kind, created, code_version, description, size_bytes, payload) "
                "VALUES (?, '?', '', '', '', 0, '{not json')",
                (key,),
            )


def _tiny(n=36, seed=2, **overrides):
    overrides.setdefault("max_time", 70.0)
    overrides.setdefault("old_stream_segments", 400)
    overrides.setdefault("lookahead", 120)
    return make_session_config(n, seed=seed, **overrides)


OVERRIDES = {"max_time": 70.0, "old_stream_segments": 400, "lookahead": 120}


# --------------------------------------------------------------------------- #
# fingerprints and config serialisation
# --------------------------------------------------------------------------- #
def test_config_round_trips_through_dict():
    config = _tiny(dynamic=True)
    rebuilt = config_from_dict(config_to_dict(config))
    assert rebuilt == config


def test_pair_fingerprint_is_stable_and_algorithm_insensitive():
    config = _tiny()
    assert pair_fingerprint(config) == pair_fingerprint(config)
    # a pair holds both algorithms, so the key must not depend on the field
    assert pair_fingerprint(config.with_algorithm("normal")) == pair_fingerprint(config)


def test_pair_fingerprint_changes_with_seed_config_and_version():
    config = _tiny()
    assert pair_fingerprint(_tiny(seed=3)) != pair_fingerprint(config)
    assert pair_fingerprint(_tiny(n=40)) != pair_fingerprint(config)
    assert pair_fingerprint(config, version="other") != pair_fingerprint(config)


def test_sweep_fingerprint_covers_all_parameters():
    base = sweep_fingerprint([30, 40], dynamic=False, seed=0, repetitions=1)
    assert sweep_fingerprint([30, 40], dynamic=False, seed=0, repetitions=1) == base
    assert sweep_fingerprint([30], dynamic=False, seed=0, repetitions=1) != base
    assert sweep_fingerprint([30, 40], dynamic=True, seed=0, repetitions=1) != base
    assert sweep_fingerprint([30, 40], dynamic=False, seed=1, repetitions=1) != base
    assert sweep_fingerprint([30, 40], dynamic=False, seed=0, repetitions=2) != base
    assert sweep_fingerprint([30, 40], dynamic=False, seed=0, repetitions=1,
                             overrides={"max_time": 70.0}) != base
    # constituent pair keys rotate the sweep key (defaults changes propagate)
    assert sweep_fingerprint([30, 40], dynamic=False, seed=0, repetitions=1,
                             pair_keys=["pair-abc", "pair-def"]) != base


# --------------------------------------------------------------------------- #
# result serialisation
# --------------------------------------------------------------------------- #
def test_session_result_round_trips_exactly():
    pair = run_pair(_tiny())
    for result in (pair.normal, pair.fast):
        rebuilt = session_result_from_dict(
            json.loads(json.dumps(session_result_to_dict(result)))
        )
        assert rebuilt.config == result.config
        assert rebuilt.metrics == result.metrics
        assert rebuilt.switch_plan == result.switch_plan
        assert rebuilt.overhead_ratio == result.overhead_ratio
        assert rebuilt.overhead_series == result.overhead_series
        assert rebuilt.n_peers == result.n_peers
        assert rebuilt.n_rounds == result.n_rounds
        assert rebuilt.stop_reason == result.stop_reason


def test_sweep_round_trips_exactly_through_json():
    sweep = run_size_sweep([30, 36], seed=1, repetitions=2, overrides=OVERRIDES)
    rebuilt = sweep_from_dict(json.loads(json.dumps(sweep_to_dict(sweep))))
    assert rebuilt == sweep  # bit-identical floats, exact dataclass equality


# --------------------------------------------------------------------------- #
# the store itself (every test on both backends)
# --------------------------------------------------------------------------- #
def test_store_save_load_pair(any_store):
    store = any_store
    config = _tiny()
    pair = run_pair(config, store=store)
    key = pair_fingerprint(config)
    assert store.contains(key)
    loaded = store.load_pair(key)
    assert loaded is not None
    normal, fast = loaded
    assert normal.metrics == pair.normal.metrics
    assert fast.metrics == pair.fast.metrics


def test_run_pair_replays_from_store_without_simulating(any_store, monkeypatch):
    store = any_store
    config = _tiny()
    first = run_pair(config, store=store)

    import repro.experiments.runner as runner_module

    def _boom(config):
        raise AssertionError("simulated despite a warm store")

    monkeypatch.setattr(runner_module, "run_single", _boom)
    second = run_pair(config, store=store)
    assert second.normal.metrics == first.normal.metrics
    assert second.fast.metrics == first.fast.metrics


def test_replay_only_store_raises_on_miss(tmp_path):
    for backend in STORE_BACKENDS:
        store = open_store(tmp_path / backend, backend=backend, replay_only=True)
        with pytest.raises(MissingResultError):
            run_pair(_tiny(), store=store)


def test_corrupt_documents_are_treated_as_misses(any_store):
    store = any_store
    key = pair_fingerprint(_tiny())
    _corrupt(store, key)
    assert store.load(key) is None
    assert not store.contains(key)


def test_corrupt_json_documents_are_listed_as_corrupt(tmp_path):
    store = ResultStore(tmp_path)
    _corrupt(store, pair_fingerprint(_tiny()))
    # entries() still lists (and labels) the unreadable document
    kinds = [entry.kind for entry in store.entries()]
    assert kinds == ["corrupt"]


def test_store_entries_and_clear(any_store):
    store = any_store
    run_size_sweep([30], seed=2, repetitions=1, overrides=OVERRIDES, store=store)
    entries = store.entries()
    assert sorted(entry.kind for entry in entries) == ["pair", "sweep"]
    assert all(entry.size_bytes > 0 for entry in entries)
    assert len(store) == 2
    assert store.clear() == 2
    assert len(store) == 0


def test_store_delete(any_store):
    store = any_store
    run_size_sweep([30], seed=2, repetitions=1, overrides=OVERRIDES, store=store)
    key = store.keys()[0]
    assert store.delete(key) is True
    assert not store.contains(key)
    assert key not in store.keys()
    assert store.delete(key) is False  # already gone


def test_store_entries_kind_and_limit_filters(any_store):
    store = any_store
    run_size_sweep([30], seed=2, repetitions=1, overrides=OVERRIDES, store=store)
    assert [e.kind for e in store.entries(kind="pair")] == ["pair"]
    assert [e.kind for e in store.entries(kind="sweep")] == ["sweep"]
    assert store.entries(kind="universe") == []
    assert len(store.entries(limit=1)) == 1
    assert len(store.entries(limit=10)) == 2
    # limit orders newest-first by the created timestamp
    newest = store.entries(limit=2)
    assert newest[0].created >= newest[1].created
    with pytest.raises(ValueError):
        store.entries(limit=-1)


def _scrub_volatile(node):
    """Drop the wall-clock fields that legitimately differ between runs."""
    if isinstance(node, dict):
        return {
            key: _scrub_volatile(value)
            for key, value in node.items()
            if key not in ("created", "wallclock_seconds")
        }
    if isinstance(node, list):
        return [_scrub_volatile(item) for item in node]
    return node


def test_backends_store_identical_documents(tmp_path):
    """The serialised document is byte-identical across backends."""
    config = _tiny()
    stores = {
        backend: open_store(tmp_path / backend, backend=backend)
        for backend in STORE_BACKENDS
    }
    for store in stores.values():
        run_pair(config, store=store)
    key = pair_fingerprint(config)
    docs = {
        backend: json.dumps(_scrub_volatile(store.load(key)), sort_keys=True)
        for backend, store in stores.items()
    }
    assert docs["json"] == docs["sqlite"]


def test_migrate_round_trips_losslessly(tmp_path):
    source = open_store(tmp_path / "src", backend="json")
    run_size_sweep([30], seed=2, repetitions=1, overrides=OVERRIDES, store=source)
    sqlite = open_store(tmp_path / "mid", backend="sqlite")
    assert migrate_store(source, sqlite) == 2
    back = open_store(tmp_path / "dst", backend="json")
    assert migrate_store(sqlite, back) == 2
    assert back.keys() == source.keys()
    for key in source.keys():
        # envelope included: created/code_version survive both hops verbatim
        assert back.load(key) == source.load(key)
    # and the migrated pair deserialises into live results
    pair_key = next(key for key in sqlite.keys() if key.startswith("pair-"))
    loaded = sqlite.load_pair(pair_key)
    assert loaded is not None
    normal, fast = loaded
    assert normal.metrics is not None and fast.metrics is not None


def test_clear_leaves_unrelated_files_alone(tmp_path):
    store = ResultStore(tmp_path)
    unrelated = tmp_path / "notes.json"
    unrelated.write_text("{}", encoding="utf-8")
    run_size_sweep([30], seed=2, repetitions=1, overrides=OVERRIDES, store=store)
    assert "notes" not in store.keys()  # foreign .json files are not entries
    assert store.clear() == 2
    assert unrelated.exists()  # only pair-*/sweep-* documents were deleted


def test_sweep_through_store_replays_exactly(any_store, monkeypatch):
    store = any_store
    kwargs = dict(seed=2, repetitions=2, overrides=OVERRIDES)
    first = run_size_sweep([30, 36], store=store, **kwargs)

    import repro.experiments.runner as runner_module

    monkeypatch.setattr(
        runner_module, "run_single",
        lambda config: (_ for _ in ()).throw(AssertionError("re-simulated")),
    )
    second = run_size_sweep([30, 36], store=store, **kwargs)
    assert second == first

    # even with the aggregated sweep entry removed, the pairs replay
    for key in store.keys():
        if key.startswith("sweep-"):
            store.delete(key)
    third = run_size_sweep([30, 36], store=store, **kwargs)
    assert third == first
