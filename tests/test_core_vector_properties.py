"""Property-based differential tests for the vector-engine kernels.

The vector engine promises *bit-identity* with the scalar oracle.  The
session-level differential suite (``test_vector_equivalence.py``) checks
that promise end to end; this module attacks the individual kernels with
hypothesis-generated inputs far outside what any shipped scenario reaches:

* :class:`MirroredBuffer` / :class:`SegmentArrays` -- the bitmask
  buffer-map mirror must track a plain :class:`SegmentBuffer` under
  arbitrary insert/discard/evict sequences;
* :func:`vectorized_priorities` -- must match ``priority_for_view``
  (``core/priority.py``) float for float under every policy;
* :func:`_greedy_masks` -- the bitmask supplier-allocation pass must
  reproduce ``greedy_supplier_assignment`` (``core/scheduler.py``),
  including queue carry-over between passes, which is how the engine
  replicates the two-pass budget allocation built on ``core/allocation.py``.

All equality assertions are exact (``==`` on floats): any re-association
of floating-point work in the kernels is a bug, not noise.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import NeighbourView, Stream
from repro.core.priority import PriorityPolicy, priority_for_view
from repro.core.scheduler import CandidateSegment, greedy_supplier_assignment
from repro.core.vector import (
    MirroredBuffer,
    SegmentArrays,
    _greedy_masks,
    _Survivors,
    vectorized_priorities,
)
from repro.streaming.buffer import SegmentBuffer

# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
#: (is_insert, seg_id) op sequences over a small id space so collisions,
#: re-inserts and discard-of-absent all happen often.
buffer_ops = st.lists(
    st.tuples(st.booleans(), st.integers(min_value=0, max_value=40)),
    max_size=80,
)

capacities = st.one_of(st.none(), st.integers(min_value=1, max_value=12))

rates_st = st.floats(
    min_value=0.0, max_value=25.0, allow_nan=False, allow_infinity=False
)


@st.composite
def priority_cases(draw):
    """Random supplier matrix + candidate set for the priority kernel."""
    k = draw(st.integers(min_value=1, max_value=6))
    m = draw(st.integers(min_value=1, max_value=9))
    rates = draw(st.lists(rates_st, min_size=k, max_size=k))
    caps = draw(st.lists(st.integers(1, 60), min_size=k, max_size=k))
    candidates = sorted(
        draw(
            st.lists(
                st.integers(0, 400), min_size=m, max_size=m, unique=True
            )
        )
    )
    playback_id = draw(st.integers(0, 400))
    play_rate = draw(
        st.floats(min_value=0.25, max_value=16.0, allow_nan=False)
    )
    # every candidate keeps at least one supplier: the engine never asks for
    # the priority of a segment nobody advertises.
    columns = [
        draw(st.sets(st.integers(0, k - 1), min_size=1, max_size=k))
        for _ in range(m)
    ]
    positions = draw(
        st.lists(
            st.lists(st.integers(0, 120), min_size=m, max_size=m),
            min_size=k,
            max_size=k,
        )
    )
    return k, m, rates, caps, candidates, playback_id, play_rate, columns, positions


@st.composite
def greedy_cases(draw):
    """Random candidate/supplier sets for the greedy allocation pass."""
    k = draw(st.integers(min_value=1, max_value=6))
    supplier_ids = draw(
        st.lists(st.integers(0, 60), min_size=k, max_size=k, unique=True)
    )
    rates = draw(st.lists(rates_st, min_size=k, max_size=k))
    m = draw(st.integers(min_value=0, max_value=10))
    seg_ids = sorted(
        draw(st.lists(st.integers(0, 300), min_size=m, max_size=m, unique=True))
    )
    priorities = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            min_size=m,
            max_size=m,
        )
    )
    masks = [draw(st.integers(0, (1 << k) - 1)) for _ in range(m)]
    period = draw(st.floats(min_value=0.05, max_value=4.0, allow_nan=False))
    queued = draw(
        st.dictionaries(
            st.sampled_from(supplier_ids),
            st.floats(min_value=0.0, max_value=3.0, allow_nan=False),
            max_size=k,
        )
    )
    initial_queue = queued if draw(st.booleans()) else None
    return supplier_ids, rates, seg_ids, priorities, masks, period, initial_queue


def _make_survivors(
    supplier_ids: List[int], rates: List[float]
) -> _Survivors:
    arrays = SegmentArrays(len(supplier_ids), 8)
    buffers = [
        MirroredBuffer(600, arrays, row) for row in range(len(supplier_ids))
    ]
    return _Survivors(supplier_ids, rates, buffers, 0)


def _scalar_candidates(
    order: List[int],
    seg_ids: List[int],
    priorities: List[float],
    masks: List[int],
    supplier_ids: List[int],
    rates: List[float],
) -> List[CandidateSegment]:
    views = [
        NeighbourView(
            node_id=supplier_ids[slot],
            send_rate=rates[slot],
            available=frozenset(),
        )
        for slot in range(len(supplier_ids))
    ]
    return [
        CandidateSegment(
            seg_id=seg_ids[index],
            priority=priorities[index],
            suppliers=tuple(
                views[slot]
                for slot in range(len(views))
                if masks[index] >> slot & 1
            ),
        )
        for index in order
    ]


# --------------------------------------------------------------------------- #
# bitmask buffer maps
# --------------------------------------------------------------------------- #
@settings(max_examples=300, deadline=None)
@given(ops=buffer_ops, capacity=capacities)
def test_mirrored_buffer_tracks_scalar_buffer(ops, capacity):
    """After flush, the matrix row equals the scalar buffer exactly."""
    scalar = SegmentBuffer(capacity=capacity)
    arrays = SegmentArrays(1, 8)
    mirrored = MirroredBuffer(capacity, arrays, 0)

    for is_insert, seg_id in ops:
        if is_insert:
            assert mirrored.insert(seg_id) == scalar.insert(seg_id)
        else:
            assert mirrored.discard(seg_id) == scalar.discard(seg_id)

    arrays.flush()
    assert not arrays.pending
    held = set(np.flatnonzero(arrays.present[0]).tolist())
    assert held == set(scalar.as_set()) == set(mirrored.as_set())
    assert len(mirrored) == len(scalar)
    assert mirrored.evicted_total == scalar.evicted_total
    for seg_id in held:
        assert arrays.insert_index[0, seg_id] == scalar._insert_index[seg_id]
    # flush is idempotent: a second flush must change nothing.
    before = arrays.present.copy()
    arrays.flush()
    assert np.array_equal(arrays.present, before)


@settings(max_examples=300, deadline=None)
@given(
    seg_ids=st.lists(st.integers(0, 200), max_size=40),
    capacity=capacities,
)
def test_fifo_positions_recoverable_from_insert_index(seg_ids, capacity):
    """The rarity positions the engine derives from the insertion-counter
    matrix (``counter - insert_index + 1``) match ``position_from_tail``
    for every held segment under pure-FIFO histories (no discards)."""
    arrays = SegmentArrays(1, 8)
    mirrored = MirroredBuffer(capacity, arrays, 0)
    for seg_id in seg_ids:
        mirrored.insert(seg_id)
    arrays.flush()
    newest_index = mirrored._counter - 1
    for seg_id in np.flatnonzero(arrays.present[0]).tolist():
        derived = int(newest_index - arrays.insert_index[0, seg_id]) + 1
        assert derived == mirrored.position_from_tail(seg_id)


@settings(max_examples=200, deadline=None)
@given(
    seg_ids=st.lists(st.integers(0, 200), max_size=40),
    extra_ops=buffer_ops,
    capacity=capacities,
)
def test_adopted_buffer_mirrors_existing_state(seg_ids, extra_ops, capacity):
    """``MirroredBuffer.adopt`` fills the row from a live buffer and keeps
    mirroring subsequent mutations."""
    original = SegmentBuffer(capacity=capacity)
    reference = SegmentBuffer(capacity=capacity)
    for seg_id in seg_ids:
        original.insert(seg_id)
        reference.insert(seg_id)

    arrays = SegmentArrays(1, 8)
    mirrored = MirroredBuffer.adopt(original, arrays, 0)
    held = set(np.flatnonzero(arrays.present[0]).tolist())
    assert held == set(reference.as_set())

    for is_insert, seg_id in extra_ops:
        if is_insert:
            mirrored.insert(seg_id)
            reference.insert(seg_id)
        else:
            mirrored.discard(seg_id)
            reference.discard(seg_id)
    arrays.flush()
    held = set(np.flatnonzero(arrays.present[0]).tolist())
    assert held == set(reference.as_set())
    for seg_id in held:
        assert arrays.insert_index[0, seg_id] == reference._insert_index[seg_id]


# --------------------------------------------------------------------------- #
# vectorized priorities vs core/priority.py
# --------------------------------------------------------------------------- #
@settings(max_examples=300, deadline=None)
@given(case=priority_cases(), policy=st.sampled_from(list(PriorityPolicy)))
def test_vectorized_priorities_match_priority_for_view(case, policy):
    (
        k,
        m,
        rates,
        caps,
        candidates,
        playback_id,
        play_rate,
        columns,
        positions,
    ) = case

    supply = np.zeros((k, m), dtype=bool)
    for i, column in enumerate(columns):
        for slot in column:
            supply[slot, i] = True
    positions_matrix = np.array(positions, dtype=np.int64)

    with np.errstate(divide="ignore", over="ignore"):
        vectorized = vectorized_priorities(
            np.array(candidates, dtype=np.int64),
            supply,
            np.array(rates, dtype=np.float64)[:, None],
            positions_matrix,
            np.array(caps, dtype=np.int64)[:, None],
            playback_id,
            play_rate,
            policy,
        )

    views = [
        NeighbourView(
            node_id=1000 + slot,
            send_rate=rates[slot],
            available=frozenset(
                candidates[i] for i in range(m) if supply[slot, i]
            ),
            positions={
                candidates[i]: positions[slot][i]
                for i in range(m)
                if supply[slot, i]
            },
            buffer_capacity=caps[slot],
        )
        for slot in range(k)
    ]
    for i, seg_id in enumerate(candidates):
        suppliers = tuple(views[slot] for slot in range(k) if supply[slot, i])
        scalar = priority_for_view(
            seg_id, suppliers, playback_id, play_rate, policy=policy
        )
        assert float(vectorized[i]) == scalar, (
            f"policy={policy} seg={seg_id}: vector={vectorized[i]!r} "
            f"scalar={scalar!r}"
        )


# --------------------------------------------------------------------------- #
# bitmask greedy allocation vs core/scheduler.py
# --------------------------------------------------------------------------- #
@settings(max_examples=300, deadline=None)
@given(case=greedy_cases())
def test_greedy_masks_matches_greedy_supplier_assignment(case):
    supplier_ids, rates, seg_ids, priorities, masks, period, initial_queue = case
    survivors = _make_survivors(supplier_ids, rates)
    order = np.argsort(-np.array(priorities), kind="stable").tolist()

    assigned_old, assigned_new, queue = _greedy_masks(
        order,
        seg_ids,
        priorities,
        masks,
        len(seg_ids),
        survivors,
        period,
        dict(initial_queue) if initial_queue else None,
    )
    assert assigned_new == []

    scalar = greedy_supplier_assignment(
        _scalar_candidates(order, seg_ids, priorities, masks, supplier_ids, rates),
        period,
        initial_queue=initial_queue,
    )

    assert [
        (item.seg_id, item.priority, item.supplier_id, item.expected_receive_time)
        for item in scalar.assigned
    ] == [(seg, pri, supplier, when) for seg, pri, supplier, when, _ in assigned_old]
    assert all(stream is Stream.OLD for *_, stream in assigned_old)
    assert queue == scalar.supplier_queue
    assigned_ids = {seg for seg, *_ in assigned_old}
    assert scalar.unassigned == [
        seg_ids[index] for index in order if seg_ids[index] not in assigned_ids
    ]


@settings(max_examples=200, deadline=None)
@given(case=greedy_cases(), data=st.data())
def test_greedy_masks_stream_split_tags(case, data):
    """Candidates at order positions >= n_old come back tagged NEW, in the
    same relative processing order, with the same combined assignment."""
    supplier_ids, rates, seg_ids, priorities, masks, period, initial_queue = case
    n_old = data.draw(st.integers(0, len(seg_ids)))
    survivors = _make_survivors(supplier_ids, rates)
    order = np.argsort(-np.array(priorities), kind="stable").tolist()

    assigned_old, assigned_new, queue = _greedy_masks(
        order,
        seg_ids,
        priorities,
        masks,
        n_old,
        survivors,
        period,
        dict(initial_queue) if initial_queue else None,
    )
    assert all(stream is Stream.OLD for *_, stream in assigned_old)
    assert all(stream is Stream.NEW for *_, stream in assigned_new)
    old_ids = {seg_ids[index] for index in range(n_old)}
    assert all(seg in old_ids for seg, *_ in assigned_old)
    assert all(seg not in old_ids for seg, *_ in assigned_new)

    scalar = greedy_supplier_assignment(
        _scalar_candidates(order, seg_ids, priorities, masks, supplier_ids, rates),
        period,
        initial_queue=initial_queue,
    )
    assert queue == scalar.supplier_queue
    # the split lists interleave back into the scalar processing order
    merged = {
        seg: (pri, supplier, when)
        for seg, pri, supplier, when, _ in assigned_old + assigned_new
    }
    assert merged == {
        item.seg_id: (item.priority, item.supplier_id, item.expected_receive_time)
        for item in scalar.assigned
    }
    scalar_order = [item.seg_id for item in scalar.assigned]
    assert [seg for seg, *_ in assigned_old] == [
        seg for seg in scalar_order if seg in old_ids
    ]
    assert [seg for seg, *_ in assigned_new] == [
        seg for seg in scalar_order if seg not in old_ids
    ]
