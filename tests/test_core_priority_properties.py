"""Property-based tests for the priority terms (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.priority import (
    URGENCY_CAP,
    rarity,
    request_priority,
    traditional_rarity,
    urgency,
)

positions = st.lists(st.integers(min_value=1, max_value=600), min_size=0, max_size=8)


@settings(max_examples=300, deadline=None)
@given(positions=positions, capacity=st.integers(min_value=1, max_value=600))
def test_rarity_always_in_unit_interval(positions, capacity):
    value = rarity(positions, capacity)
    assert 0.0 < value <= 1.0


@settings(max_examples=300, deadline=None)
@given(positions=st.lists(st.integers(min_value=1, max_value=600), min_size=1, max_size=8),
       extra=st.integers(min_value=1, max_value=600))
def test_rarity_decreases_with_more_suppliers(positions, extra):
    """Adding a supplier can only make a segment less rare (or equally rare)."""
    base = rarity(positions, 600)
    extended = rarity(positions + [extra], 600)
    assert extended <= base + 1e-12


@settings(max_examples=300, deadline=None)
@given(seg=st.integers(min_value=0, max_value=10_000),
       play=st.integers(min_value=0, max_value=10_000),
       p=st.floats(min_value=0.5, max_value=100.0),
       rate=st.floats(min_value=0.0, max_value=100.0))
def test_urgency_positive_and_capped(seg, play, p, rate):
    value = urgency(seg, play, p, rate)
    assert 0.0 < value <= URGENCY_CAP


@settings(max_examples=300, deadline=None)
@given(seg=st.integers(min_value=1, max_value=1000),
       play=st.integers(min_value=0, max_value=1000),
       p=st.floats(min_value=0.5, max_value=100.0),
       rate=st.floats(min_value=0.1, max_value=100.0),
       shift=st.integers(min_value=1, max_value=500))
def test_urgency_monotone_in_deadline_distance(seg, play, p, rate, shift):
    """A segment farther from the playback point is never more urgent."""
    near = urgency(seg, play, p, rate)
    far = urgency(seg + shift, play, p, rate)
    assert far <= near + 1e-12


@settings(max_examples=200, deadline=None)
@given(u=st.floats(min_value=0.0, max_value=1e6),
       r=st.floats(min_value=0.0, max_value=1.0))
def test_priority_upper_bounds_both_terms(u, r):
    value = request_priority(u, r)
    assert value >= u and value >= r
    assert value in (u, r)


@settings(max_examples=100, deadline=None)
@given(n=st.integers(min_value=1, max_value=1000))
def test_traditional_rarity_monotone(n):
    assert traditional_rarity(n) >= traditional_rarity(n + 1)
