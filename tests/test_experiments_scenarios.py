"""Tests for the named example scenarios."""

import pytest

from repro.experiments.scenarios import SCENARIOS, scenario_config


def test_three_scenarios_are_defined():
    assert {"video-conference", "distance-education", "flash-crowd"} <= set(SCENARIOS)
    for scenario in SCENARIOS.values():
        assert scenario.description
        assert scenario.n_nodes >= 100


def test_scenario_config_materialises_session_config():
    config = scenario_config("video-conference", algorithm="normal", seed=9)
    assert config.n_nodes == SCENARIOS["video-conference"].n_nodes
    assert config.algorithm == "normal"
    assert config.seed == 9
    assert not config.churn.enabled


def test_distance_education_is_dynamic():
    config = scenario_config("distance-education")
    assert config.churn.enabled
    assert config.churn.leave_fraction == 0.05


def test_flash_crowd_overrides_bandwidth_and_quota():
    config = scenario_config("flash-crowd")
    assert config.inbound_mean == 12.0
    assert config.startup_quota_new == 80


def test_unknown_scenario_raises_with_hint():
    with pytest.raises(KeyError, match="available"):
        scenario_config("does-not-exist")
