"""Tests for the named example scenarios (wrappers over workload specs)."""

import pytest

from repro.experiments.scenarios import SCENARIOS, scenario_config
from repro.workloads.library import WORKLOADS


def test_three_scenarios_are_defined():
    assert {"video-conference", "distance-education", "flash-crowd"} <= set(SCENARIOS)
    for scenario in SCENARIOS.values():
        assert scenario.description
        assert scenario.n_nodes >= 100
        assert scenario.workload in WORKLOADS


def test_scenarios_resolve_to_workload_specs():
    for scenario in SCENARIOS.values():
        spec = scenario.spec()
        assert spec.n_nodes == scenario.n_nodes
        assert spec.n_switches == scenario.n_switches >= 1


def test_video_conference_is_static_multi_switch():
    scenario = SCENARIOS["video-conference"]
    spec = scenario.spec()
    assert not scenario.dynamic
    assert spec.n_switches >= 3  # repeated speaker changes
    config = scenario_config("video-conference", algorithm="normal", seed=9)
    assert config.n_nodes == scenario.n_nodes == 300
    assert config.algorithm == "normal"
    assert config.seed == 9
    assert not config.churn.enabled


def test_distance_education_is_dynamic():
    scenario = SCENARIOS["distance-education"]
    assert scenario.dynamic
    config = scenario_config("distance-education")
    assert config.churn.enabled
    assert config.churn.leave_fraction == 0.05
    assert config.n_nodes == 800


def test_flash_crowd_overrides_bandwidth_and_quota():
    config = scenario_config("flash-crowd")
    assert config.inbound_mean == 12.0
    assert config.startup_quota_new == 80
    assert config.peer_classes == ()  # tight homogeneous bandwidth


def test_scenario_configs_run_full_horizon_for_phase_metrics():
    config = scenario_config("flash-crowd")
    assert config.run_full_horizon
    assert config.record_rounds


def test_unknown_scenario_raises_with_hint():
    with pytest.raises(KeyError, match="available"):
        scenario_config("does-not-exist")
