"""Tests for the discrete-event engine and periodic processes."""

import pytest

from repro.sim.engine import SimulationEngine, StopSimulation


def test_schedule_and_run_executes_in_order():
    engine = SimulationEngine()
    seen = []
    engine.schedule(2.0, lambda: seen.append(("b", engine.now)))
    engine.schedule(1.0, lambda: seen.append(("a", engine.now)))
    engine.run()
    assert seen == [("a", 1.0), ("b", 2.0)]
    assert engine.processed_events == 2


def test_schedule_in_uses_relative_delay():
    engine = SimulationEngine(start_time=5.0)
    seen = []
    engine.schedule_in(2.5, lambda: seen.append(engine.now))
    engine.run()
    assert seen == [7.5]


def test_schedule_in_negative_delay_rejected():
    engine = SimulationEngine()
    with pytest.raises(ValueError):
        engine.schedule_in(-1.0, lambda: None)


def test_schedule_in_past_rejected():
    engine = SimulationEngine()
    engine.schedule(1.0, lambda: None)
    engine.run()
    with pytest.raises(ValueError):
        engine.schedule(0.5, lambda: None)


def test_run_until_stops_at_horizon():
    engine = SimulationEngine()
    seen = []
    for t in (1.0, 2.0, 3.0, 4.0):
        engine.schedule(t, lambda t=t: seen.append(t))
    engine.run_until(2.5)
    assert seen == [1.0, 2.0]
    assert engine.now == 2.5
    # pending events survive and can still run later
    engine.run()
    assert seen == [1.0, 2.0, 3.0, 4.0]


def test_run_until_advances_clock_when_queue_drains_early():
    # Regression: the clock must reach the horizon even when the queue
    # empties before ``until`` (previously ``now`` only reached ``until``
    # if a strictly-future event remained in the queue).
    engine = SimulationEngine()
    seen = []
    engine.schedule(1.0, lambda: seen.append(1.0))
    engine.run_until(5.0)
    assert seen == [1.0]
    assert engine.now == 5.0


def test_run_until_on_empty_queue_advances_clock():
    engine = SimulationEngine()
    engine.run_until(3.0)
    assert engine.now == 3.0


def test_run_until_stop_simulation_does_not_advance_to_horizon():
    from repro.sim.engine import StopSimulation

    def stop():
        raise StopSimulation("done")

    engine = SimulationEngine()
    engine.schedule(1.0, stop)
    engine.schedule(2.0, lambda: None)
    engine.run_until(10.0)
    # The run ended early by request: time stays at the stopping event.
    assert engine.now == 1.0
    assert engine.stop_reason == "done"


def test_stop_simulation_ends_run_and_records_reason():
    engine = SimulationEngine()
    seen = []

    def stopper():
        raise StopSimulation("done early")

    engine.schedule(1.0, lambda: seen.append(1))
    engine.schedule(2.0, stopper)
    engine.schedule(3.0, lambda: seen.append(3))
    engine.run()
    assert seen == [1]
    assert engine.stop_reason == "done early"


def test_periodic_process_fires_every_period():
    engine = SimulationEngine()
    times = []
    process = engine.schedule_periodic(1.0, times.append)
    engine.run_until(4.5)
    assert times == [1.0, 2.0, 3.0, 4.0]
    assert process.fired == 4


def test_periodic_process_custom_start_and_stop():
    engine = SimulationEngine()
    times = []
    process = engine.schedule_periodic(2.0, times.append, start=1.0)

    def maybe_stop(now: float) -> None:
        if now >= 5.0:
            process.stop()

    engine.schedule_periodic(1.0, maybe_stop)
    engine.run_until(10.0)
    assert times == [1.0, 3.0, 5.0]
    assert not process.active


def test_periodic_process_rejects_nonpositive_period():
    engine = SimulationEngine()
    with pytest.raises(ValueError):
        engine.schedule_periodic(0.0, lambda now: None)


def test_cancel_one_shot_event():
    engine = SimulationEngine()
    seen = []
    event = engine.schedule(1.0, lambda: seen.append("x"))
    engine.cancel(event)
    engine.run()
    assert seen == []


def test_max_events_bounds_execution():
    engine = SimulationEngine()
    seen = []
    for t in range(1, 6):
        engine.schedule(float(t), lambda t=t: seen.append(t))
    engine.run(max_events=3)
    assert seen == [1, 2, 3]
