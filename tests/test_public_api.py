"""Tests for the package's public API surface."""

import repro


def test_version_is_exposed():
    assert repro.__version__


def test_public_names_importable():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_top_level_quickstart_flow():
    config = repro.make_session_config(36, seed=2, max_time=70.0,
                                       old_stream_segments=400, lookahead=120)
    result = repro.run_single(config)
    assert result.metrics.avg_switch_time > 0
    assert isinstance(repro.FastSwitchAlgorithm(), repro.FastSwitchAlgorithm)


def test_optimal_split_reachable_from_top_level():
    split = repro.optimal_split(15.0, 50.0, 50.0, 10.0, 10.0)
    assert split.r1 > 0 and split.r2 > 0


def test_subpackages_import_cleanly():
    import repro.channels  # noqa: F401
    import repro.churn  # noqa: F401
    import repro.core  # noqa: F401
    import repro.experiments  # noqa: F401
    import repro.metrics  # noqa: F401
    import repro.obs  # noqa: F401
    import repro.overlay  # noqa: F401
    import repro.sim  # noqa: F401
    import repro.streaming  # noqa: F401
    import repro.workloads  # noqa: F401
