"""Tests for the simulation clock."""

import pytest

from repro.sim.clock import ClockError, SimulationClock


def test_clock_starts_at_zero_by_default():
    clock = SimulationClock()
    assert clock.now == 0.0
    assert clock.elapsed == 0.0


def test_clock_starts_at_custom_time():
    clock = SimulationClock(start=-30.0)
    assert clock.now == -30.0
    assert clock.start == -30.0


def test_advance_moves_time_forward():
    clock = SimulationClock()
    clock.advance_to(1.5)
    clock.advance_to(4.0)
    assert clock.now == 4.0
    assert clock.elapsed == 4.0


def test_advance_to_same_time_is_allowed():
    clock = SimulationClock()
    clock.advance_to(2.0)
    clock.advance_to(2.0)
    assert clock.now == 2.0


def test_advance_backwards_raises():
    clock = SimulationClock()
    clock.advance_to(5.0)
    with pytest.raises(ClockError):
        clock.advance_to(4.999)


def test_reset_restores_start():
    clock = SimulationClock()
    clock.advance_to(10.0)
    clock.reset(2.0)
    assert clock.now == 2.0
    assert clock.start == 2.0
    assert clock.elapsed == 0.0


def test_elapsed_accounts_for_negative_start():
    clock = SimulationClock(start=-10.0)
    clock.advance_to(5.0)
    assert clock.elapsed == pytest.approx(15.0)
