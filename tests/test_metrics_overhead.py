"""Tests for communication-overhead accounting."""

import pytest

from repro.metrics.overhead import OverheadAccountant


def test_ratio_of_control_to_data():
    accountant = OverheadAccountant()
    accountant.add_control(620 * 5)
    accountant.add_data(30 * 1024 * 10)
    assert accountant.overhead_ratio() == pytest.approx((620 * 5) / (30 * 1024 * 10))


def test_paper_back_of_envelope_one_percent():
    """The paper's own calculation: 620 bits x M=5 over 10 segments of 30 Kb ~ 1%."""
    accountant = OverheadAccountant()
    accountant.add_control(620 * 5)
    accountant.add_data(30 * 1024 * 10)
    assert 0.005 < accountant.overhead_ratio() < 0.015


def test_requests_optionally_included():
    accountant = OverheadAccountant()
    accountant.add_control(1000)
    accountant.add_request(500)
    accountant.add_data(10_000)
    assert accountant.overhead_ratio() == pytest.approx(0.1)
    assert accountant.overhead_ratio(include_requests=True) == pytest.approx(0.15)


def test_zero_data_gives_zero_ratio():
    accountant = OverheadAccountant()
    accountant.add_control(1000)
    assert accountant.overhead_ratio() == 0.0


def test_negative_amounts_rejected():
    accountant = OverheadAccountant()
    with pytest.raises(ValueError):
        accountant.add_control(-1)
    with pytest.raises(ValueError):
        accountant.add_request(-1)
    with pytest.raises(ValueError):
        accountant.add_data(-1)


def test_period_samples_and_series():
    accountant = OverheadAccountant()
    accountant.add_control(100)
    accountant.add_data(1000)
    first = accountant.close_period(1.0)
    accountant.add_control(100)
    accountant.add_data(3000)
    second = accountant.close_period(2.0)
    assert first.ratio() == pytest.approx(0.1)
    assert second.ratio() == pytest.approx(200 / 4000)
    series = accountant.ratio_series()
    assert [t for t, _ in series] == [1.0, 2.0]
    assert accountant.last_sample() is accountant.samples[-1]


def test_last_sample_none_when_empty():
    assert OverheadAccountant().last_sample() is None
