"""Tests for the workload runner: pairing, store replay, parallel determinism."""

import pytest

from repro.experiments.store import ResultStore
from repro.workloads.runner import (
    WorkloadRunner,
    rep_from_dict,
    rep_to_dict,
    run_workload,
    run_workload_rep,
    workload_fingerprint,
)
from repro.workloads.library import IPTV_CLASSES
from repro.workloads.spec import Phase, WorkloadSpec


@pytest.fixture(scope="module")
def zap_spec():
    """A small three-switch zapping spec (module-scoped: simulated once)."""
    return WorkloadSpec(
        name="test-zap",
        description="three quick zaps over classes",
        n_nodes=50,
        peer_classes=IPTV_CLASSES,
        base_leave_fraction=0.01,
        base_join_fraction=0.01,
        phases=(
            Phase("zap-1", 16.0, switch=True),
            Phase("zap-2", 16.0, switch=True),
            Phase("zap-3", 16.0, switch=True),
        ),
        session_overrides={"old_stream_segments": 400, "lookahead": 120},
    )


@pytest.fixture(scope="module")
def zap_rep(zap_spec):
    return run_workload_rep(zap_spec, seed=5)


def test_rep_runs_every_segment_paired(zap_rep):
    assert zap_rep.n_switches == 3
    assert [o.algorithm for o in zap_rep.normal] == ["normal"] * 3
    assert [o.algorithm for o in zap_rep.fast] == ["fast"] * 3
    for normal, fast in zip(zap_rep.normal, zap_rep.fast):
        assert normal.segment == fast.segment
        assert normal.n_peers == fast.n_peers  # identical populations (paired)


def test_rep_reports_per_switch_and_per_class_metrics(zap_rep):
    for outcome in zap_rep.fast:
        assert outcome.avg_switch_time > 0
        labels = {stats.peer_class for stats in outcome.per_class}
        assert labels == {"adsl", "cable", "fiber"}
        for stats in outcome.per_class:
            assert stats.peers > 0
            assert stats.p50 <= stats.p90 <= stats.p99
        assert len(outcome.per_phase) == 1
        assert 0.0 <= outcome.continuity <= 1.0


def test_segments_draw_different_switches(zap_rep):
    # Distinct per-segment seeds: the three zaps are not copies of each other.
    times = [o.avg_switch_time for o in zap_rep.fast]
    assert len(set(times)) > 1


def test_rep_dict_round_trip(zap_rep):
    assert rep_from_dict(rep_to_dict(zap_rep)) == zap_rep


def test_fingerprint_covers_spec_seed_and_version(zap_spec):
    base = workload_fingerprint(zap_spec, 0)
    assert base.startswith("workload-")
    assert workload_fingerprint(zap_spec, 1) != base
    assert workload_fingerprint(zap_spec.scaled_to(60), 0) != base
    assert workload_fingerprint(zap_spec, 0, version="other") != base
    assert workload_fingerprint(zap_spec, 0) == base


def test_store_round_trip_and_pure_replay(zap_spec, zap_rep, tmp_path, monkeypatch):
    store = ResultStore(tmp_path / "results")
    result = run_workload(zap_spec, seed=5, store=store)
    assert result.simulated == 1 and result.replayed == 0
    assert result.reps[0] == zap_rep  # store-backed run equals direct run

    # Second run must replay without executing any simulation.
    import repro.workloads.runner as runner_module

    def _boom(spec, seed):
        raise AssertionError("simulated despite a warm store")

    monkeypatch.setattr(runner_module, "run_workload_rep", _boom)
    replayed = WorkloadRunner(store=store).run(zap_spec, seed=5)
    assert replayed.replayed == 1 and replayed.simulated == 0
    assert replayed.reps == result.reps  # bit-identical replay


def test_replay_only_store_raises_on_miss(zap_spec, tmp_path):
    store = ResultStore(tmp_path / "empty", replay_only=True)
    with pytest.raises(KeyError):
        WorkloadRunner(store=store).run(zap_spec, seed=99)


def test_workers_are_bit_identical_to_serial(zap_spec):
    serial = run_workload(zap_spec, seed=5, repetitions=2, workers=1)
    parallel = run_workload(zap_spec, seed=5, repetitions=2, workers=4)
    assert serial.reps == parallel.reps


def test_repetitions_use_consecutive_seeds(zap_spec):
    result = run_workload(zap_spec, seed=5, repetitions=2)
    assert [rep.seed for rep in result.reps] == [5, 6]
    assert result.reps[0] != result.reps[1]


def test_result_tables_have_one_row_per_switch(zap_rep, zap_spec):
    result = run_workload(zap_spec, seed=5)
    rows = result.switch_rows()
    assert [row["switch"] for row in rows] == [1, 2, 3]
    assert all(row["reduction"] == pytest.approx(
        (row["normal_switch_time"] - row["fast_switch_time"]) / row["normal_switch_time"]
    ) for row in rows)
    class_rows = result.class_rows()
    assert {row["class"] for row in class_rows} == {"adsl", "cable", "fiber"}
    assert len(class_rows) == 9  # 3 switches x 3 classes
    assert len(result.phase_rows()) == 3


def test_invalid_runner_parameters():
    with pytest.raises(ValueError):
        WorkloadRunner(workers=0)
    with pytest.raises(ValueError):
        run_workload(
            WorkloadSpec(name="x", description="", n_nodes=50,
                         phases=(Phase("a", 5.0, switch=True),)),
            repetitions=0,
        )
