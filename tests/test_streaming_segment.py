"""Tests for stream specs and the switch plan."""

import pytest

from repro.core.base import Stream
from repro.streaming.segment import (
    DEFAULT_SEGMENT_BITS,
    StreamSpec,
    SwitchPlan,
    classify_segment,
)


def test_default_segment_size_matches_paper():
    # 30 Kb per segment
    assert DEFAULT_SEGMENT_BITS == 30 * 1024


def test_stream_spec_generation_counting():
    spec = StreamSpec(stream=Stream.NEW, source_id=1, first_id=900, rate=10.0)
    assert spec.segments_generated_by(0.0, 0.0) == 0
    assert spec.segments_generated_by(0.0, 2.5) == 25
    assert spec.segments_generated_by(5.0, 2.0) == 0  # before the start
    assert spec.id_at(0) == 900
    assert spec.id_at(24) == 924


def test_stream_spec_validation():
    with pytest.raises(ValueError):
        StreamSpec(stream=Stream.OLD, source_id=0, first_id=0, rate=0.0)
    with pytest.raises(ValueError):
        StreamSpec(stream=Stream.OLD, source_id=0, first_id=-1, rate=10.0)
    with pytest.raises(ValueError):
        StreamSpec(stream=Stream.OLD, source_id=0, first_id=0, rate=10.0, segment_bits=0)
    spec = StreamSpec(stream=Stream.OLD, source_id=0, first_id=0, rate=10.0)
    with pytest.raises(ValueError):
        spec.id_at(-1)


def test_switch_plan_boundary_and_classification():
    plan = SwitchPlan.from_old_stream(899, startup_quota=50)
    assert plan.id_end == 899
    assert plan.id_begin == 900
    assert plan.stream_of(899) is Stream.OLD
    assert plan.stream_of(900) is Stream.NEW
    assert list(plan.startup_ids()) == list(range(900, 950))


def test_switch_plan_enforces_paper_convention():
    with pytest.raises(ValueError):
        SwitchPlan(id_end=10, id_begin=12)
    with pytest.raises(ValueError):
        SwitchPlan(id_end=10, id_begin=11, startup_quota=0)


def test_classify_segment_without_plan_defaults_to_old():
    assert classify_segment(123456, None) is Stream.OLD
    plan = SwitchPlan.from_old_stream(100)
    assert classify_segment(123456, plan) is Stream.NEW
