"""Shared pytest fixtures.

The simulation-level fixtures use deliberately small overlays so the unit
and integration test suite stays fast; the benchmark harness (under
``benchmarks/``) is where realistic sizes live.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import make_session_config
from repro.streaming.session import SessionConfig


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic NumPy generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_config() -> SessionConfig:
    """A very small but complete session configuration (fast to run)."""
    return make_session_config(
        40,
        seed=7,
        max_time=80.0,
        old_stream_segments=400,
        lookahead=120,
    )


@pytest.fixture
def small_config() -> SessionConfig:
    """A slightly larger configuration used by the integration tests."""
    return make_session_config(
        80,
        seed=3,
        max_time=100.0,
        old_stream_segments=600,
    )
