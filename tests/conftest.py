"""Shared pytest fixtures and differential-testing helpers.

The simulation-level fixtures use deliberately small overlays so the unit
and integration test suite stays fast; the benchmark harness (under
``benchmarks/``) is where realistic sizes live.

The module-level helpers (importable as ``from conftest import ...``, the
same idiom the benchmarks use) are the shared core of the vector-engine
differential suite: they run a configuration through both engines and
normalise results/stores into comparable JSON documents.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, Tuple

import numpy as np
import pytest

from repro.experiments.config import make_session_config
from repro.experiments.store import session_result_to_dict
from repro.streaming.session import SessionConfig, SessionResult, SwitchSession

#: Document fields that legitimately differ between two executions of the
#: same simulation (wallclock timing, store-write timestamps).
VOLATILE_DOCUMENT_KEYS = frozenset({"wallclock_seconds", "created"})


def strip_volatile(node: Any) -> Any:
    """Recursively drop volatile (timing) fields from a JSON-like document."""
    if isinstance(node, dict):
        return {
            key: strip_volatile(value)
            for key, value in node.items()
            if key not in VOLATILE_DOCUMENT_KEYS
        }
    if isinstance(node, list):
        return [strip_volatile(value) for value in node]
    return node


def normalized_run_document(result: SessionResult) -> Dict[str, Any]:
    """A session result as the exact JSON document the store would persist,
    minus volatile timing fields (one ``json`` round trip, so any numpy
    scalar leaking into the result shows up as a string mismatch)."""
    document = json.loads(json.dumps(session_result_to_dict(result), default=str))
    return strip_volatile(document)


def run_engine_pair(
    config: SessionConfig,
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Run ``config`` under the oracle and the vector engine.

    Returns both normalised store documents; the differential suite asserts
    they are bit-identical.
    """
    oracle = SwitchSession(replace(config, engine="oracle")).run()
    vector = SwitchSession(replace(config, engine="vector")).run()
    return normalized_run_document(oracle), normalized_run_document(vector)


def store_documents(root: Path) -> Dict[str, Any]:
    """Every JSON document persisted under a result-store directory,
    keyed by filename, with volatile fields stripped."""
    documents: Dict[str, Any] = {}
    for path in sorted(Path(root).rglob("*.json")):
        with open(path, "r", encoding="utf-8") as handle:
            documents[path.name] = strip_volatile(json.load(handle))
    return documents


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic NumPy generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_config() -> SessionConfig:
    """A very small but complete session configuration (fast to run)."""
    return make_session_config(
        40,
        seed=7,
        max_time=80.0,
        old_stream_segments=400,
        lookahead=120,
    )


@pytest.fixture
def small_config() -> SessionConfig:
    """A slightly larger configuration used by the integration tests."""
    return make_session_config(
        80,
        seed=3,
        max_time=100.0,
        old_stream_segments=600,
    )
