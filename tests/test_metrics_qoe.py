"""Tests for the per-phase QoE and per-class switch-time metrics."""

import pytest

from repro.metrics.collectors import PeerOutcome, RoundSample
from repro.metrics.qoe import (
    continuity_index,
    per_class_switch_stats,
    phase_qoe,
)


def _sample(time, stalls, switched=0.0, peers=10):
    return RoundSample(
        time=time,
        undelivered_ratio_old=0.0,
        delivered_ratio_new=0.0,
        fraction_finished_old=0.0,
        fraction_prepared_new=0.0,
        fraction_switched=switched,
        tracked_peers=peers,
        cumulative_stalls=stalls,
    )


def _outcome(node_id, switch_time, peer_class=""):
    return PeerOutcome(
        node_id=node_id,
        q0=10,
        finish_old_time=1.0,
        prepared_new_time=switch_time,
        switch_complete_time=switch_time,
        peer_class=peer_class,
    )


def test_continuity_index_bounds():
    assert continuity_index(0, 10, 5) == 1.0
    assert continuity_index(50, 10, 5) == 0.0
    assert continuity_index(25, 10, 5) == 0.5
    assert continuity_index(999, 10, 5) == 0.0  # clamped
    assert continuity_index(3, 0, 0) == 1.0  # no slots -> perfect by definition


def test_phase_qoe_partitions_stalls_exactly():
    rounds = [_sample(0.0, 0)] + [
        _sample(float(t), stalls, switched=min(1.0, t / 10.0))
        for t, stalls in [(1, 2), (2, 4), (3, 4), (4, 10), (5, 10), (6, 12)]
    ]
    phases = phase_qoe(rounds, [("a", 0.0, 3.0), ("b", 3.0, 6.0)])
    assert [q.phase for q in phases] == ["a", "b"]
    assert phases[0].stall_periods == 4
    assert phases[1].stall_periods == 8
    assert phases[0].stall_periods + phases[1].stall_periods == 12
    assert phases[0].periods == 3 and phases[1].periods == 3
    assert phases[0].continuity_index == pytest.approx(1.0 - 4 / 30)
    assert phases[1].fraction_switched == pytest.approx(0.6)


def test_phase_qoe_excludes_warmup_stalls_from_first_phase():
    # A simulated warm-up samples at times <= 0; its stalls must not be
    # charged to the first phase window.
    rounds = [_sample(-2.0, 5), _sample(0.0, 7), _sample(1.0, 9), _sample(2.0, 9)]
    phases = phase_qoe(rounds, [("a", 0.0, 2.0)])
    assert phases[0].stall_periods == 2  # 9 - 7, not 9 - 0


def test_phase_qoe_empty_window_reports_zero_periods():
    rounds = [_sample(float(t), t) for t in range(1, 5)]
    phases = phase_qoe(rounds, [("a", 0.0, 4.0), ("late", 4.0, 8.0)])
    assert phases[1].periods == 0
    assert phases[1].stall_periods == 0
    assert phases[1].continuity_index == 1.0
    # carries the last observed switch fraction
    assert phases[1].fraction_switched == phases[0].fraction_switched


def test_per_class_stats_group_and_sort_by_class():
    outcomes = (
        [_outcome(i, 10.0 + i, "fiber") for i in range(5)]
        + [_outcome(10 + i, 20.0 + i, "adsl") for i in range(5)]
    )
    stats = per_class_switch_stats(outcomes, horizon=60.0)
    assert [s.peer_class for s in stats] == ["adsl", "fiber"]
    adsl, fiber = stats
    assert adsl.peers == fiber.peers == 5
    assert adsl.mean > fiber.mean
    assert fiber.p50 == 12.0
    assert adsl.p50 <= adsl.p90 <= adsl.p99


def test_unfinished_peers_account_for_horizon():
    outcomes = [_outcome(1, 5.0, "adsl")]
    never = PeerOutcome(
        node_id=2, q0=10, finish_old_time=None, prepared_new_time=None,
        switch_complete_time=None, peer_class="adsl",
    )
    stats = per_class_switch_stats(outcomes + [never], horizon=60.0)
    assert stats[0].peers == 2
    assert stats[0].p99 > 50.0  # the unfinished peer pulls the tail to the horizon


def test_unlabelled_peers_fall_back_to_all():
    stats = per_class_switch_stats([_outcome(1, 5.0)], horizon=60.0)
    assert [s.peer_class for s in stats] == ["all"]
