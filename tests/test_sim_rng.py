"""Tests for deterministic named random streams."""

import numpy as np
import pytest

from repro.sim.rng import RandomStreams, derive_seed, sequence_seeds


def test_derive_seed_is_deterministic_and_name_sensitive():
    assert derive_seed(1, "a") == derive_seed(1, "a")
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_same_seed_same_stream_reproduces_draws():
    a = RandomStreams(seed=42).get("x").random(5)
    b = RandomStreams(seed=42).get("x").random(5)
    assert np.allclose(a, b)


def test_different_streams_are_independent_of_request_order():
    s1 = RandomStreams(seed=7)
    first_then_second = (s1.get("alpha").random(3), s1.get("beta").random(3))

    s2 = RandomStreams(seed=7)
    second_then_first = (s2.get("beta").random(3), s2.get("alpha").random(3))

    assert np.allclose(first_then_second[0], second_then_first[1])
    assert np.allclose(first_then_second[1], second_then_first[0])


def test_spawn_creates_independent_families():
    parent = RandomStreams(seed=3)
    child_a = parent.spawn("child")
    child_b = parent.spawn("child")
    other = parent.spawn("other")
    assert np.allclose(child_a.get("x").random(4), child_b.get("x").random(4))
    assert not np.allclose(child_a.get("x").random(4), other.get("x").random(4))


def test_reset_recreates_streams():
    streams = RandomStreams(seed=11)
    first = streams.get("x").random(3)
    streams.reset()
    second = streams.get("x").random(3)
    assert np.allclose(first, second)


def test_contains_reports_created_streams():
    streams = RandomStreams(seed=1)
    assert "x" not in streams
    streams.get("x")
    assert "x" in streams


def test_sequence_seeds_deterministic_and_distinct():
    seeds = sequence_seeds(42, 50)
    assert seeds == sequence_seeds(42, 50)
    assert len(set(seeds)) == 50
    assert all(isinstance(s, int) and s >= 0 for s in seeds)


def test_sequence_seeds_differ_by_root():
    assert sequence_seeds(0, 10) != sequence_seeds(1, 10)


def test_sequence_seeds_prefix_stable():
    # spawning more children never perturbs the earlier ones
    assert sequence_seeds(7, 20)[:5] == sequence_seeds(7, 5)


def test_sequence_seeds_handles_negative_roots_and_zero_count():
    assert sequence_seeds(-3, 4) == sequence_seeds(-3, 4)
    assert sequence_seeds(5, 0) == []
    with pytest.raises(ValueError):
        sequence_seeds(5, -1)


def test_sequence_seeded_streams_are_uncorrelated():
    a, b = sequence_seeds(123, 2)
    draws_a = RandomStreams(a).get("events").random(4000)
    draws_b = RandomStreams(b).get("events").random(4000)
    assert not np.array_equal(draws_a, draws_b)
    assert abs(float(np.corrcoef(draws_a, draws_b)[0, 1])) < 0.05
