"""Tests for the region/topology model and the topology library."""

import pytest

from repro.net.library import TOPOLOGIES, get_topology, topology_names
from repro.net.topology import NetTopology, Region


def two_region_topology(**kwargs):
    defaults = dict(
        name="two-city",
        regions=(
            Region("east", weight=0.6, last_mile_ms=5.0, jitter_ms=1.0, loss=0.01),
            Region("west", weight=0.4, last_mile_ms=8.0, jitter_ms=2.0, loss=0.0),
        ),
        latency_ms=((2.0, 80.0), (80.0, 3.0)),
        locality_bias=2.0,
        description="test topology",
    )
    defaults.update(kwargs)
    return NetTopology(**defaults)


class TestRegion:
    def test_validation(self):
        with pytest.raises(ValueError):
            Region("")
        with pytest.raises(ValueError):
            Region("a", weight=0.0)
        with pytest.raises(ValueError):
            Region("a", last_mile_ms=-1.0)
        with pytest.raises(ValueError):
            Region("a", loss=1.0)

    def test_defaults_are_valid(self):
        region = Region("anywhere")
        assert region.weight == 1.0 and region.loss == 0.0


class TestNetTopology:
    def test_round_trips_exactly_through_dict(self):
        topo = two_region_topology()
        assert NetTopology.from_dict(topo.to_dict()) == topo

    def test_rejects_non_square_matrix(self):
        with pytest.raises(ValueError):
            two_region_topology(latency_ms=((2.0, 80.0),))
        with pytest.raises(ValueError):
            two_region_topology(latency_ms=((2.0,), (80.0,)))

    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            two_region_topology(latency_ms=((2.0, -1.0), (80.0, 3.0)))

    def test_rejects_duplicate_region_names(self):
        with pytest.raises(ValueError):
            two_region_topology(regions=(Region("east"), Region("east")))

    def test_rejects_empty_regions_and_sub_one_bias(self):
        with pytest.raises(ValueError):
            two_region_topology(regions=(), latency_ms=())
        with pytest.raises(ValueError):
            two_region_topology(locality_bias=0.5)

    def test_region_index_and_latency_lookup(self):
        topo = two_region_topology()
        assert topo.region_index("west") == 1
        assert topo.base_latency_ms("east", "west") == 80.0
        with pytest.raises(KeyError):
            topo.region_index("mars")

    def test_weights_are_normalised(self):
        topo = two_region_topology()
        assert topo.weights == pytest.approx((0.6, 0.4))
        assert sum(topo.weights) == pytest.approx(1.0)

    def test_properties(self):
        topo = two_region_topology()
        assert topo.n_regions == 2
        assert topo.region_names == ("east", "west")
        assert topo.max_latency_ms == 80.0
        assert topo.lossy is True


class TestLibrary:
    def test_required_topologies_present(self):
        names = topology_names()
        assert "metro" in names
        assert "transcontinental" in names

    def test_all_library_topologies_round_trip(self):
        for name, topo in TOPOLOGIES.items():
            assert topo.name == name
            assert NetTopology.from_dict(topo.to_dict()) == topo

    def test_transcontinental_shape(self):
        topo = get_topology("transcontinental")
        assert topo.n_regions == 4
        assert topo.max_latency_ms >= 100.0
        assert topo.lossy
        assert topo.locality_bias > 1.0

    def test_get_topology_unknown_name(self):
        with pytest.raises(KeyError):
            get_topology("atlantis")
