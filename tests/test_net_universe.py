"""The network layer through the multi-channel universe.

Pins the acceptance properties at the universe level: topology-bearing
specs round-trip and fingerprint, serial shared-engine execution is
bit-identical to per-channel worker fan-out, and store documents carry
the ``net-*`` reference for replay.
"""

import pytest

from repro.channels.runner import run_universe, universe_fingerprint
from repro.channels.universe import UniverseSpec, channel_mesh_config, plan_universe
from repro.experiments.store import ResultStore
from repro.workloads.library import UNIVERSES, get_universe


TINY_NET = UniverseSpec(
    name="net-tiny",
    description="tiny lineup over the metro topology",
    n_channels=3,
    n_viewers=36,
    min_audience=8,
    surfer_fraction=0.3,
    surfer_zap_rate=0.1,
    loyal_zap_rate=0.01,
    duration=30.0,
    topology="metro",
)


class TestSpecTopology:
    def test_round_trips_exactly(self):
        assert UniverseSpec.from_dict(TINY_NET.to_dict()) == TINY_NET

    def test_old_payload_defaults_to_ideal(self):
        payload = TINY_NET.to_dict()
        del payload["topology"]
        assert UniverseSpec.from_dict(payload).topology == ""

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            UniverseSpec(name="bad", n_channels=2, n_viewers=24,
                         topology="atlantis")

    def test_topology_override_reserved(self):
        with pytest.raises(ValueError):
            UniverseSpec(name="bad", n_channels=2, n_viewers=24,
                         session_overrides=(("topology", "metro"),))

    def test_with_topology(self):
        moved = get_universe("lineup-mini").with_topology("transcontinental")
        assert moved.topology == "transcontinental"
        assert moved.n_channels == get_universe("lineup-mini").n_channels

    def test_topology_rotates_fingerprint(self):
        ideal = TINY_NET.with_topology("")
        assert universe_fingerprint(TINY_NET, 0) != universe_fingerprint(ideal, 0)

    def test_mesh_config_carries_topology(self):
        plan = plan_universe(TINY_NET, seed=0)
        config = channel_mesh_config(
            TINY_NET, plan.lineup.channels[0], plan.channel_seeds[0], "fast"
        )
        assert config.topology == "metro"

    def test_library_has_a_topology_universe(self):
        spec = get_universe("lineup-global")
        assert spec.topology == "transcontinental"
        assert "lineup-global" in UNIVERSES


class TestExecution:
    def test_workers_bit_identical_to_serial(self):
        serial = run_universe(TINY_NET, seed=0)
        parallel = run_universe(TINY_NET, seed=0, workers=2)
        assert serial.reps == parallel.reps
        assert serial.decile_rows() == parallel.decile_rows()

    def test_store_documents_reference_net_key_and_replay(self, tmp_path):
        store = ResultStore(tmp_path)
        first = run_universe(TINY_NET, seed=0, store=store)
        assert first.simulated == 1
        universe_keys = [k for k in store.keys() if k.startswith("universe-")]
        net_keys = [k for k in store.keys() if k.startswith("net-")]
        assert len(universe_keys) == 1 and len(net_keys) == 1
        document = store.load_universe(universe_keys[0])
        assert document["net_key"] == net_keys[0]
        assert store.load_net(net_keys[0]).name == "metro"
        # Pure replay: bit-identical, nothing simulated.
        replay_store = ResultStore(tmp_path, replay_only=True)
        replayed = run_universe(TINY_NET, seed=0, store=replay_store)
        assert replayed.simulated == 0 and replayed.replayed == 1
        assert replayed.reps == first.reps

    def test_ideal_universe_stores_no_net_document(self, tmp_path):
        store = ResultStore(tmp_path)
        run_universe(TINY_NET.with_topology(""), seed=0, store=store)
        assert not any(k.startswith("net-") for k in store.keys())
