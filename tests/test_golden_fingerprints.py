"""Golden-fingerprint regression pins for the persistent result store.

Two families of pins, both computed with a frozen ``version=`` override so
they are independent of the package version string:

* **Key goldens** -- the store fingerprints (``pair-*``, ``net-*``,
  ``workload-*``, ``universe-*``) of one representative document each.
  These rotate only when the spec/config serialisation, the schema
  version or :func:`stable_hash` itself changes.  Silent key rotation is
  a real bug class: it orphans every previously persisted result.

* **Content goldens** -- ``stable_hash`` of fully normalised result
  documents (volatile timing fields stripped).  These pin the simulator's
  *behaviour* bit for bit: any change to scheduling, priorities, RNG
  consumption order or document layout shows up here first.

If a change rotates one of these on purpose (schema bump, intentional
behaviour change), update the literal and say why in the commit message.
"""

from __future__ import annotations

import pytest

from conftest import normalized_run_document, strip_volatile

from repro.channels.runner import universe_fingerprint
from repro.experiments.config import make_session_config
from repro.experiments.store import (
    SCHEMA_VERSION,
    net_fingerprint,
    pair_fingerprint,
    stable_hash,
)
from repro.net.library import get_topology
from repro.streaming.session import SwitchSession
from repro.workloads.library import get_universe, get_workload
from repro.workloads.runner import (
    rep_to_dict,
    run_workload_rep,
    workload_fingerprint,
)

#: Frozen code-version stand-in: goldens must not rotate on version bumps.
GOLDEN_VERSION = "golden-v1"


def _golden_config(**overrides):
    base = dict(seed=7, max_time=80.0, old_stream_segments=400, lookahead=120)
    base.update(overrides)
    return make_session_config(40, **base)


def test_schema_version_is_pinned():
    """Key goldens below assume schema 1; bumping the schema must be a
    deliberate act that also refreshes every golden."""
    assert SCHEMA_VERSION == 1


# --------------------------------------------------------------------------- #
# store-key goldens
# --------------------------------------------------------------------------- #
def test_pair_fingerprint_golden():
    assert (
        pair_fingerprint(_golden_config(), version=GOLDEN_VERSION)
        == "pair-76bbae35bff1eab46ac57023"
    )


def test_pair_fingerprint_ignores_algorithm_and_engine():
    """The pair key covers both algorithms and must not depend on the
    execution engine (engines are bit-identical by contract)."""
    base = pair_fingerprint(_golden_config(), version=GOLDEN_VERSION)
    for override in (
        {"algorithm": "normal"},
        {"engine": "vector"},
    ):
        assert pair_fingerprint(_golden_config(**override), version=GOLDEN_VERSION) == base


def test_net_fingerprint_golden():
    assert (
        net_fingerprint(get_topology("metro"), version=GOLDEN_VERSION)
        == "net-c1f669f51aee33f59ff10450"
    )


def test_workload_fingerprint_golden():
    spec = get_workload("paper-baseline").scaled_to(30)
    assert (
        workload_fingerprint(spec, 3, version=GOLDEN_VERSION)
        == "workload-49d9c05eeb65eafe55a852fc"
    )


def test_universe_fingerprint_golden():
    spec = get_universe("lineup-mini").scaled_to(n_channels=3, n_viewers=60)
    assert (
        universe_fingerprint(spec, 5, version=GOLDEN_VERSION)
        == "universe-6f60949bdced2271ad303c16"
    )


# --------------------------------------------------------------------------- #
# document-content goldens (simulation behaviour pinned bit for bit)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "algorithm,expected",
    [
        ("fast", "d8029d02f407d60bb31207cb"),
        ("normal", "cf480a4281437f11d87c1a09"),
    ],
)
@pytest.mark.parametrize("engine", ["oracle", "vector"])
def test_run_document_content_golden(algorithm, expected, engine):
    """The normalised run document of the reference session is pinned --
    under both engines, which by contract hash identically."""
    config = _golden_config(algorithm=algorithm, engine=engine)
    document = normalized_run_document(SwitchSession(config).run())
    assert stable_hash(document) == expected


def test_workload_document_content_golden():
    spec = get_workload("paper-baseline").scaled_to(30)
    document = strip_volatile(rep_to_dict(run_workload_rep(spec, 3)))
    assert stable_hash(document) == "552569faa595b110607eb560"
