"""Tests for the greedy supplier assignment (Algorithm 1, step 1)."""

import pytest

from repro.core.base import NeighbourView
from repro.core.scheduler import (
    CandidateSegment,
    greedy_supplier_assignment,
)


def _supplier(node_id, send_rate):
    return NeighbourView(
        node_id=node_id,
        send_rate=send_rate,
        available=frozenset(),
        positions={},
        buffer_capacity=600,
    )


def _candidate(seg_id, priority, suppliers):
    return CandidateSegment(seg_id=seg_id, priority=priority, suppliers=tuple(suppliers))


def test_single_supplier_fills_until_period_exhausted():
    supplier = _supplier(1, send_rate=4.0)  # 0.25 s per segment -> 3 fit strictly below 1 s
    candidates = [_candidate(i, 1.0 - i * 0.01, [supplier]) for i in range(6)]
    result = greedy_supplier_assignment(candidates, period=1.0)
    assert [a.seg_id for a in result.assigned] == [0, 1, 2]
    assert result.unassigned == [3, 4, 5]
    assert result.load_of(1) == pytest.approx(0.75)


def test_faster_supplier_is_preferred():
    slow = _supplier(1, send_rate=2.0)
    fast = _supplier(2, send_rate=10.0)
    candidates = [_candidate(0, 1.0, [slow, fast])]
    result = greedy_supplier_assignment(candidates, period=1.0)
    assert result.assigned[0].supplier_id == 2
    assert result.assigned[0].expected_receive_time == pytest.approx(0.1)


def test_queueing_time_spreads_load_across_suppliers():
    a = _supplier(1, send_rate=5.0)
    b = _supplier(2, send_rate=5.0)
    candidates = [_candidate(i, 1.0, [a, b]) for i in range(4)]
    result = greedy_supplier_assignment(candidates, period=1.0)
    used = [item.supplier_id for item in result.assigned]
    # alternating assignment: two per supplier
    assert used.count(1) == 2 and used.count(2) == 2


def test_priority_order_wins_when_capacity_is_scarce():
    supplier = _supplier(1, send_rate=1.5)  # only one segment fits below the period
    candidates = [
        _candidate(10, 0.9, [supplier]),
        _candidate(11, 0.5, [supplier]),
    ]
    result = greedy_supplier_assignment(candidates, period=1.0)
    assert [a.seg_id for a in result.assigned] == [10]
    assert result.unassigned == [11]


def test_segment_without_supplier_is_unassigned():
    candidates = [_candidate(7, 1.0, [])]
    result = greedy_supplier_assignment(candidates, period=1.0)
    assert result.assigned == []
    assert result.unassigned == [7]


def test_zero_rate_suppliers_are_ignored():
    dead = _supplier(1, send_rate=0.0)
    live = _supplier(2, send_rate=5.0)
    candidates = [_candidate(0, 1.0, [dead, live])]
    result = greedy_supplier_assignment(candidates, period=1.0)
    assert result.assigned[0].supplier_id == 2


def test_initial_queue_carries_existing_load():
    supplier = _supplier(1, send_rate=4.0)
    candidates = [_candidate(i, 1.0, [supplier]) for i in range(4)]
    result = greedy_supplier_assignment(candidates, period=1.0, initial_queue={1: 0.6})
    # 0.6 of the period already used: only 0.85 fits (one more segment)
    assert len(result.assigned) == 1
    assert result.supplier_queue[1] == pytest.approx(0.85)


def test_invalid_period_rejected():
    with pytest.raises(ValueError):
        greedy_supplier_assignment([], period=0.0)


def test_assigned_ids_helper():
    supplier = _supplier(1, send_rate=10.0)
    candidates = [_candidate(i, 1.0, [supplier]) for i in range(3)]
    result = greedy_supplier_assignment(candidates, period=1.0)
    assert result.assigned_ids() == frozenset({0, 1, 2})
    assert result.load_of(99) == 0.0
