"""Tests for the urgency/rarity priority computation (Eq. 6-9)."""

import pytest

from repro.core.base import NeighbourView
from repro.core.priority import (
    URGENCY_CAP,
    PriorityPolicy,
    deadline_slack,
    max_receive_rate,
    priority_for_view,
    rarity,
    request_priority,
    traditional_rarity,
    urgency,
)


def _neighbour(node_id=1, send_rate=10.0, available=(), positions=None, capacity=600):
    available = frozenset(available)
    positions = positions or {seg: 1 for seg in available}
    return NeighbourView(
        node_id=node_id,
        send_rate=send_rate,
        available=available,
        positions=positions,
        buffer_capacity=capacity,
    )


def test_max_receive_rate_is_paper_eq6():
    assert max_receive_rate([3.0, 9.0, 5.0]) == 9.0
    assert max_receive_rate([]) == 0.0


def test_deadline_slack_formula():
    # (id_i - id_play)/p - 1/R_i = (20-10)/10 - 1/5 = 1 - 0.2
    assert deadline_slack(20, 10, 10.0, 5.0) == pytest.approx(0.8)


def test_deadline_slack_requires_positive_play_rate():
    with pytest.raises(ValueError):
        deadline_slack(20, 10, 0.0, 5.0)


def test_urgency_is_inverse_slack_and_capped():
    assert urgency(20, 10, 10.0, 5.0) == pytest.approx(1.0 / 0.8)
    # segment already at/behind the playback position -> capped
    assert urgency(10, 10, 10.0, 5.0) == URGENCY_CAP
    # unservable segment (no receive rate) -> capped
    assert urgency(30, 10, 10.0, 0.0) == URGENCY_CAP


def test_urgency_decreases_with_playback_distance():
    close = urgency(15, 10, 10.0, 10.0)
    far = urgency(60, 10, 10.0, 10.0)
    assert close > far


def test_rarity_is_product_of_positions_over_capacity():
    assert rarity([300, 600], 600) == pytest.approx(0.5 * 1.0)
    assert rarity([1], 600) == pytest.approx(1.0 / 600.0)
    assert rarity([], 600) == 1.0


def test_rarity_with_per_supplier_capacities():
    assert rarity([50, 100], [100, 1000]) == pytest.approx(0.5 * 0.1)
    with pytest.raises(ValueError):
        rarity([50, 100], [100])
    with pytest.raises(ValueError):
        rarity([50], [0])


def test_rarity_clamps_out_of_range_positions():
    assert rarity([0], 600) == pytest.approx(1.0 / 600.0)   # below 1 clamped up
    assert rarity([900], 600) == pytest.approx(1.0)          # above B clamped down


def test_rarity_higher_when_close_to_eviction_everywhere():
    endangered = rarity([590, 595], 600)
    safe = rarity([5, 10], 600)
    assert endangered > safe


def test_traditional_rarity_is_one_over_suppliers():
    assert traditional_rarity(4) == pytest.approx(0.25)
    assert traditional_rarity(0) == 1.0


def test_request_priority_is_max_of_both_terms():
    assert request_priority(0.3, 0.8) == 0.8
    assert request_priority(2.0, 0.1) == 2.0


def test_priority_for_view_paper_policy_uses_positions():
    suppliers = [
        _neighbour(1, send_rate=10.0, available={50}, positions={50: 590}),
        _neighbour(2, send_rate=5.0, available={50}, positions={50: 595}),
    ]
    value = priority_for_view(50, suppliers, playback_id=45, play_rate=10.0)
    # rarity term: (590/600)*(595/600) ~ 0.975 dominates urgency ~ 2.5? no:
    # slack = 0.5 - 0.1 = 0.4 -> urgency 2.5 dominates.
    assert value == pytest.approx(
        max(1.0 / (0.5 - 0.1), (590 / 600) * (595 / 600))
    )


def test_priority_policies_differ():
    suppliers = [
        _neighbour(1, send_rate=10.0, available={80}, positions={80: 550}),
        _neighbour(2, send_rate=10.0, available={80}, positions={80: 580}),
    ]
    paper = priority_for_view(80, suppliers, 10, 10.0, policy=PriorityPolicy.PAPER)
    urgency_only = priority_for_view(80, suppliers, 10, 10.0, policy=PriorityPolicy.URGENCY_ONLY)
    traditional = priority_for_view(
        80, suppliers, 10, 10.0, policy=PriorityPolicy.TRADITIONAL_RARITY
    )
    sequential = priority_for_view(80, suppliers, 10, 10.0, policy=PriorityPolicy.SEQUENTIAL)
    # far-away segment: urgency is small, so the rarity flavours dominate
    assert paper > urgency_only
    assert traditional == pytest.approx(max(urgency_only, 0.5))
    assert 0.0 < sequential < 1.0


def test_sequential_policy_orders_by_segment_id():
    suppliers = [_neighbour(1, available={20, 30}, positions={20: 1, 30: 1})]
    early = priority_for_view(20, suppliers, 10, 10.0, policy=PriorityPolicy.SEQUENTIAL)
    late = priority_for_view(30, suppliers, 10, 10.0, policy=PriorityPolicy.SEQUENTIAL)
    assert early > late
