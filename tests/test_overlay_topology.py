"""Tests for the overlay graph structure."""

import networkx as nx
import pytest

from repro.overlay.topology import NodeInfo, Overlay, build_overlay_from_trace
from repro.overlay.trace import TraceNode


def _triangle() -> Overlay:
    overlay = Overlay()
    for i in range(3):
        overlay.add_node(NodeInfo(node_id=i, ping_ms=100.0 * (i + 1)))
    overlay.add_edge(0, 1)
    overlay.add_edge(1, 2)
    overlay.add_edge(2, 0)
    return overlay


def test_add_and_query_nodes_edges():
    overlay = _triangle()
    assert len(overlay) == 3
    assert overlay.edge_count() == 3
    assert overlay.degree(0) == 2
    assert overlay.neighbours(1) == [0, 2]
    assert overlay.has_edge(0, 2)
    assert not overlay.has_edge(0, 3)


def test_duplicate_node_rejected():
    overlay = _triangle()
    with pytest.raises(ValueError):
        overlay.add_node(NodeInfo(node_id=0))


def test_add_edge_unknown_endpoint_raises():
    overlay = _triangle()
    with pytest.raises(KeyError):
        overlay.add_edge(0, 99)


def test_self_loops_and_duplicates_are_ignored():
    overlay = _triangle()
    assert overlay.add_edge(0, 0) is False
    assert overlay.add_edge(0, 1) is False
    assert overlay.edge_count() == 3


def test_remove_node_removes_incident_edges():
    overlay = _triangle()
    overlay.remove_node(1)
    assert len(overlay) == 2
    assert overlay.edge_count() == 1
    assert 1 not in overlay
    with pytest.raises(KeyError):
        overlay.remove_node(1)


def test_edge_latency_from_ping_times():
    overlay = _triangle()
    # ping 100 ms and 200 ms -> (100 + 200)/2 = 150 ms = 0.15 s
    assert overlay.edge_latency(0, 1) == pytest.approx(0.15)


def test_hop_distances_bfs():
    overlay = Overlay()
    for i in range(5):
        overlay.add_node(NodeInfo(node_id=i))
    overlay.add_edge(0, 1)
    overlay.add_edge(1, 2)
    overlay.add_edge(2, 3)
    # node 4 is isolated
    distances = overlay.hop_distances_from(0)
    assert distances == {0: 0, 1: 1, 2: 2, 3: 3}
    assert not overlay.is_connected()


def test_average_degree_and_copy():
    overlay = _triangle()
    assert overlay.average_degree() == pytest.approx(2.0)
    clone = overlay.copy()
    clone.remove_node(0)
    assert len(overlay) == 3  # original untouched
    assert len(clone) == 2


def test_networkx_roundtrip_preserves_structure():
    overlay = _triangle()
    graph = overlay.to_networkx()
    assert isinstance(graph, nx.Graph)
    assert graph.number_of_nodes() == 3
    assert graph.number_of_edges() == 3
    back = Overlay.from_networkx(graph)
    assert sorted(back.edges()) == sorted(overlay.edges())
    assert back.info(0).ping_ms == overlay.info(0).ping_ms


def test_build_overlay_from_trace_ignores_dangling_neighbours():
    records = [
        TraceNode(node_id=0, ip="10.0.0.0", neighbours=(1, 99)),
        TraceNode(node_id=1, ip="10.0.0.1", neighbours=(0,)),
    ]
    overlay = build_overlay_from_trace(records)
    assert len(overlay) == 2
    assert overlay.edge_count() == 1
    assert overlay.has_edge(0, 1)


def test_empty_overlay_properties():
    overlay = Overlay()
    assert len(overlay) == 0
    assert overlay.average_degree() == 0.0
    assert overlay.is_connected()
