"""Tests for the ASCII and SVG chart helpers."""

import pytest

from repro.analysis.charts import (
    ascii_bar_chart,
    ascii_line_chart,
    sparkline,
    svg_bar_chart,
    svg_line_chart,
)


def test_sparkline_levels():
    line = sparkline([0.0, 0.5, 1.0])
    assert len(line) == 3
    assert line[0] == "▁"
    assert line[-1] == "█"
    assert sparkline([]) == ""
    assert sparkline([2.0, 2.0, 2.0]) == "▁▁▁"


def test_line_chart_contains_markers_and_legend():
    chart = ascii_line_chart(
        {
            "normal": [(0.0, 0.0), (10.0, 1.0)],
            "fast": [(0.0, 0.2), (10.0, 1.0)],
        },
        width=30,
        height=8,
        title="delivered ratio",
    )
    assert "delivered ratio" in chart
    assert "* normal" in chart
    assert "o fast" in chart
    assert "*" in chart and "o" in chart
    # y-axis extremes rendered
    assert "1.000" in chart and "0.000" in chart


def test_line_chart_empty_and_invalid_dimensions():
    assert ascii_line_chart({"a": []}) == "(no data)"
    with pytest.raises(ValueError):
        ascii_line_chart({"a": [(0, 1)]}, width=5)
    with pytest.raises(ValueError):
        ascii_line_chart({"a": [(0, 1)]}, height=2)


def test_line_chart_flat_series_does_not_crash():
    chart = ascii_line_chart({"flat": [(0.0, 0.5), (5.0, 0.5)]}, width=20, height=5)
    assert "flat" in chart


def test_bar_chart_scales_bars_by_value():
    chart = ascii_bar_chart(
        [("normal prepare", 20.0), ("fast prepare", 10.0)], width=40, unit="s"
    )
    lines = chart.splitlines()
    normal_bar = lines[0].count("█")
    fast_bar = lines[1].count("█")
    assert normal_bar == 40
    assert fast_bar == 20
    assert "20s" in lines[0]


def test_bar_chart_empty_and_zero_values():
    assert ascii_bar_chart([]) == "(no data)"
    chart = ascii_bar_chart([("zero", 0.0)], title="t")
    assert "zero" in chart and "t" in chart


# --------------------------------------------------------------------------- #
# SVG builders on degenerate inputs
# --------------------------------------------------------------------------- #
def test_svg_line_chart_empty_input_renders_stub():
    for empty in ({}, {"a": []}):
        svg = svg_line_chart(empty)
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert "no data" in svg


def test_svg_line_chart_single_point_series():
    svg = svg_line_chart({"solo": [(1.0, 2.0)]}, title="single")
    assert svg.startswith("<svg") and svg.endswith("</svg>")
    assert "single" in svg and "solo" in svg


def test_svg_line_chart_all_equal_values_does_not_divide_by_zero():
    svg = svg_line_chart({"flat": [(0.0, 3.0), (5.0, 3.0), (10.0, 3.0)]})
    assert svg.startswith("<svg") and svg.endswith("</svg>")
    assert "flat" in svg and "NaN" not in svg and "inf" not in svg


def test_svg_line_chart_equal_x_values_does_not_divide_by_zero():
    svg = svg_line_chart({"stack": [(2.0, 0.0), (2.0, 1.0)]})
    assert svg.startswith("<svg") and svg.endswith("</svg>")
    assert "NaN" not in svg and "inf" not in svg


def test_svg_bar_chart_empty_input_renders_stub():
    svg = svg_bar_chart([])
    assert svg.startswith("<svg") and svg.endswith("</svg>")
    assert "no data" in svg


def test_svg_bar_chart_single_and_zero_valued_bars():
    svg = svg_bar_chart([("only", 0.0)], title="zeros")
    assert svg.startswith("<svg") and svg.endswith("</svg>")
    assert "only" in svg and "zeros" in svg and "NaN" not in svg


def test_svg_bar_chart_all_equal_values():
    svg = svg_bar_chart([("a", 2.5), ("b", 2.5), ("c", 2.5)])
    assert svg.startswith("<svg") and svg.endswith("</svg>")
    for label in ("a", "b", "c"):
        assert f">{label}<" in svg or label in svg
    assert "NaN" not in svg and "inf" not in svg
