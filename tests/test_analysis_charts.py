"""Tests for the ASCII chart helpers."""

import pytest

from repro.analysis.charts import ascii_bar_chart, ascii_line_chart, sparkline


def test_sparkline_levels():
    line = sparkline([0.0, 0.5, 1.0])
    assert len(line) == 3
    assert line[0] == "▁"
    assert line[-1] == "█"
    assert sparkline([]) == ""
    assert sparkline([2.0, 2.0, 2.0]) == "▁▁▁"


def test_line_chart_contains_markers_and_legend():
    chart = ascii_line_chart(
        {
            "normal": [(0.0, 0.0), (10.0, 1.0)],
            "fast": [(0.0, 0.2), (10.0, 1.0)],
        },
        width=30,
        height=8,
        title="delivered ratio",
    )
    assert "delivered ratio" in chart
    assert "* normal" in chart
    assert "o fast" in chart
    assert "*" in chart and "o" in chart
    # y-axis extremes rendered
    assert "1.000" in chart and "0.000" in chart


def test_line_chart_empty_and_invalid_dimensions():
    assert ascii_line_chart({"a": []}) == "(no data)"
    with pytest.raises(ValueError):
        ascii_line_chart({"a": [(0, 1)]}, width=5)
    with pytest.raises(ValueError):
        ascii_line_chart({"a": [(0, 1)]}, height=2)


def test_line_chart_flat_series_does_not_crash():
    chart = ascii_line_chart({"flat": [(0.0, 0.5), (5.0, 0.5)]}, width=20, height=5)
    assert "flat" in chart


def test_bar_chart_scales_bars_by_value():
    chart = ascii_bar_chart(
        [("normal prepare", 20.0), ("fast prepare", 10.0)], width=40, unit="s"
    )
    lines = chart.splitlines()
    normal_bar = lines[0].count("█")
    fast_bar = lines[1].count("█")
    assert normal_bar == 40
    assert fast_bar == 20
    assert "20s" in lines[0]


def test_bar_chart_empty_and_zero_values():
    assert ascii_bar_chart([]) == "(no data)"
    chart = ascii_bar_chart([("zero", 0.0)], title="t")
    assert "zero" in chart and "t" in chart
