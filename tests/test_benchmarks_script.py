"""Tests for the perf-trajectory summary script (benchmarks/run_benchmarks.py).

The pinned suite itself runs in CI (its ``BENCH_<sha>.json`` artifact is
uploaded there); these tests cover the summarisation logic and the sha
lookup without paying for a benchmark run.
"""

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "benchmarks" / "run_benchmarks.py"


def load_script():
    spec = importlib.util.spec_from_file_location("run_benchmarks", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


FAKE_PAYLOAD = {
    "machine_info": {"python_version": "3.11.0", "machine": "x86_64"},
    "benchmarks": [
        {
            "fullname": "benchmarks/bench_core_scheduler.py::test_fast",
            "stats": {"mean": 0.002, "stddev": 0.0001, "min": 0.0018, "rounds": 50},
        },
        {
            "fullname": "benchmarks/bench_simulator_throughput.py::test_small",
            "stats": {"mean": 1.5, "stddev": 0.05, "min": 1.4, "rounds": 5},
        },
    ],
}


def test_summarise_produces_sorted_scalar_rows():
    module = load_script()
    summary = module.summarise(FAKE_PAYLOAD, "abc1234")
    assert summary["git_sha"] == "abc1234"
    assert summary["schema"] == 1
    assert summary["python"] == "3.11.0"
    names = [row["name"] for row in summary["benchmarks"]]
    assert names == sorted(names)
    row = summary["benchmarks"][0]
    assert set(row) == {"name", "mean_s", "stddev_s", "min_s", "rounds"}
    # The whole summary is plain JSON (diffs cleanly across commits).
    json.dumps(summary)


def test_summarise_empty_payload():
    module = load_script()
    summary = module.summarise({}, "deadbeef")
    assert summary["benchmarks"] == []


def test_git_sha_matches_repository():
    module = load_script()
    sha = module.git_sha(REPO_ROOT)
    expected = subprocess.run(
        ["git", "rev-parse", "--short", "HEAD"],
        cwd=REPO_ROOT, capture_output=True, text=True, check=True,
    ).stdout.strip()
    if module.working_tree_dirty(REPO_ROOT):
        expected += "-dirty"
    assert sha == expected


def test_git_sha_outside_repository(tmp_path):
    module = load_script()
    assert module.git_sha(tmp_path) == "unknown"


def _init_repo(path):
    """A throwaway git repository with one commit."""
    env_flags = [
        "-c", "user.name=bench", "-c", "user.email=bench@example.invalid",
    ]
    subprocess.run(["git", "init", "-q"], cwd=path, check=True)
    (path / "tracked.txt").write_text("v1\n")
    subprocess.run(["git", *env_flags, "add", "tracked.txt"], cwd=path, check=True)
    subprocess.run(
        ["git", *env_flags, "commit", "-q", "-m", "seed"], cwd=path, check=True
    )


def test_git_sha_dirty_suffix(tmp_path):
    """A clean checkout gets the bare sha; any uncommitted change appends
    ``-dirty`` so the summary file name cannot shadow the clean record."""
    module = load_script()
    _init_repo(tmp_path)
    clean = module.git_sha(tmp_path)
    assert clean != "unknown"
    assert not clean.endswith("-dirty")

    (tmp_path / "tracked.txt").write_text("v2\n")
    assert module.git_sha(tmp_path) == clean + "-dirty"

    subprocess.run(["git", "checkout", "-q", "--", "tracked.txt"],
                   cwd=tmp_path, check=True)
    assert module.git_sha(tmp_path) == clean


def test_pinned_subset_files_exist():
    module = load_script()
    for name in module.PINNED_BENCHMARKS:
        assert (REPO_ROOT / "benchmarks" / name).exists(), name


def test_script_help_runs():
    proc = subprocess.run(
        [sys.executable, str(SCRIPT), "--help"], capture_output=True, text=True
    )
    assert proc.returncode == 0
    assert "BENCH_<sha>.json" in proc.stdout
    assert "--check" in proc.stdout


# --------------------------------------------------------------------------- #
# --check: summary diffing
# --------------------------------------------------------------------------- #
def _summary(module, means, sha="aaa1111", created="2026-01-01T00:00:00+00:00"):
    payload = {
        "machine_info": {},
        "benchmarks": [
            {"fullname": name, "stats": {"mean": mean, "stddev": 0.0,
                                         "min": mean, "rounds": 3}}
            for name, mean in means.items()
        ],
    }
    summary = module.summarise(payload, sha)
    summary["created"] = created
    return summary


def test_diff_summaries_flags_only_regressions_beyond_threshold():
    module = load_script()
    previous = _summary(module, {"a": 1.0, "b": 1.0, "c": 1.0})
    current = _summary(module, {"a": 1.19, "b": 1.21, "c": 0.5}, sha="bbb2222")
    rows = {row["name"]: row for row in
            module.diff_summaries(previous, current, threshold=0.20)}
    assert not rows["a"]["regressed"]          # +19% is within tolerance
    assert rows["b"]["regressed"]              # +21% is not
    assert not rows["c"]["regressed"]          # an improvement never fails
    assert rows["c"]["change"] == -0.5


def test_diff_summaries_skips_unshared_and_zero_benchmarks():
    module = load_script()
    previous = _summary(module, {"shared": 1.0, "renamed": 1.0, "zero": 0.0})
    current = _summary(module, {"shared": 1.0, "fresh": 5.0, "zero": 2.0})
    names = [row["name"] for row in module.diff_summaries(previous, current)]
    assert names == ["shared"]


def test_diff_summaries_rejects_negative_threshold():
    module = load_script()
    try:
        module.diff_summaries({}, {}, threshold=-0.1)
    except ValueError as err:
        assert "threshold" in str(err)
    else:
        raise AssertionError("negative threshold accepted")


def _write_summary(directory, summary):
    path = directory / f"BENCH_{summary['git_sha']}.json"
    path.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    return path


def test_find_previous_summary_prefers_latest_created(tmp_path):
    """Discovery orders by the created timestamp *inside* the summaries
    (not mtime) and skips the file the current run is about to write."""
    module = load_script()
    older = _summary(module, {"a": 1.0}, sha="old1111",
                     created="2026-01-01T00:00:00+00:00")
    newer = _summary(module, {"a": 2.0}, sha="new2222",
                     created="2026-02-01T00:00:00+00:00")
    current = _summary(module, {"a": 3.0}, sha="cur3333",
                       created="2026-03-01T00:00:00+00:00")
    # write newest first so mtime order contradicts created order
    _write_summary(tmp_path, newer)
    _write_summary(tmp_path, older)
    _write_summary(tmp_path, current)

    found = module.find_previous_summary(tmp_path, "BENCH_cur3333.json")
    assert found["git_sha"] == "new2222"


def test_find_previous_summary_ignores_corrupt_files(tmp_path):
    module = load_script()
    (tmp_path / "BENCH_bad.json").write_text("{not json")
    (tmp_path / "BENCH_list.json").write_text("[1, 2]")
    assert module.find_previous_summary(tmp_path, "BENCH_x.json") is None
    good = _summary(module, {"a": 1.0}, sha="ok")
    _write_summary(tmp_path, good)
    assert module.find_previous_summary(tmp_path, "BENCH_x.json")["git_sha"] == "ok"


def test_main_check_gates_on_regression(tmp_path, monkeypatch, capsys):
    """End-to-end --check flow with the suite runner stubbed out: first run
    writes a baseline, a faster run passes, a >20% slower run fails."""
    module = load_script()
    means = {"benchmarks/bench_x.py::test_hot": 1.0}
    monkeypatch.setattr(
        module, "run_pinned_suite",
        lambda root: {
            "machine_info": {},
            "benchmarks": [
                {"fullname": name, "stats": {"mean": mean, "stddev": 0.0,
                                             "min": mean, "rounds": 3}}
                for name, mean in means.items()
            ],
        },
    )
    monkeypatch.setattr(module, "git_sha", lambda root: "seed111")
    assert module.main(["--check", "--output-dir", str(tmp_path)]) == 0
    assert "nothing to compare" in capsys.readouterr().err

    monkeypatch.setattr(module, "git_sha", lambda root: "next222")
    means["benchmarks/bench_x.py::test_hot"] = 0.9
    assert module.main(["--check", "--output-dir", str(tmp_path)]) == 0
    assert "ok" in capsys.readouterr().err

    monkeypatch.setattr(module, "git_sha", lambda root: "slow333")
    means["benchmarks/bench_x.py::test_hot"] = 1.5
    assert module.main(["--check", "--output-dir", str(tmp_path)]) == 1
    err = capsys.readouterr().err
    assert "REGRESSED" in err
    # the regressed summary is still written (the record keeps the evidence)
    assert (tmp_path / "BENCH_slow333.json").exists()


def test_main_check_threshold_override(tmp_path, monkeypatch):
    module = load_script()
    mean = {"value": 1.0}
    monkeypatch.setattr(
        module, "run_pinned_suite",
        lambda root: {
            "machine_info": {},
            "benchmarks": [{"fullname": "b::t",
                            "stats": {"mean": mean["value"], "stddev": 0.0,
                                      "min": mean["value"], "rounds": 3}}],
        },
    )
    monkeypatch.setattr(module, "git_sha", lambda root: "base444")
    assert module.main(["--output-dir", str(tmp_path)]) == 0
    mean["value"] = 1.4  # +40% vs base444: passes at 50%, fails at the default
    monkeypatch.setattr(module, "git_sha", lambda root: "loose555")
    assert module.main(
        ["--check", "--check-threshold", "0.5", "--output-dir", str(tmp_path)]
    ) == 0
    # drop the passing run's summary so the default-threshold run still
    # compares against the 1.0s baseline
    (tmp_path / "BENCH_loose555.json").unlink()
    monkeypatch.setattr(module, "git_sha", lambda root: "tight666")
    assert module.main(["--check", "--output-dir", str(tmp_path)]) == 1
