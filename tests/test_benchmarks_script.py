"""Tests for the perf-trajectory summary script (benchmarks/run_benchmarks.py).

The pinned suite itself runs in CI (its ``BENCH_<sha>.json`` artifact is
uploaded there); these tests cover the summarisation logic and the sha
lookup without paying for a benchmark run.
"""

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SCRIPT = REPO_ROOT / "benchmarks" / "run_benchmarks.py"


def load_script():
    spec = importlib.util.spec_from_file_location("run_benchmarks", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


FAKE_PAYLOAD = {
    "machine_info": {"python_version": "3.11.0", "machine": "x86_64"},
    "benchmarks": [
        {
            "fullname": "benchmarks/bench_core_scheduler.py::test_fast",
            "stats": {"mean": 0.002, "stddev": 0.0001, "min": 0.0018, "rounds": 50},
        },
        {
            "fullname": "benchmarks/bench_simulator_throughput.py::test_small",
            "stats": {"mean": 1.5, "stddev": 0.05, "min": 1.4, "rounds": 5},
        },
    ],
}


def test_summarise_produces_sorted_scalar_rows():
    module = load_script()
    summary = module.summarise(FAKE_PAYLOAD, "abc1234")
    assert summary["git_sha"] == "abc1234"
    assert summary["schema"] == 1
    assert summary["python"] == "3.11.0"
    names = [row["name"] for row in summary["benchmarks"]]
    assert names == sorted(names)
    row = summary["benchmarks"][0]
    assert set(row) == {"name", "mean_s", "stddev_s", "min_s", "rounds"}
    # The whole summary is plain JSON (diffs cleanly across commits).
    json.dumps(summary)


def test_summarise_empty_payload():
    module = load_script()
    summary = module.summarise({}, "deadbeef")
    assert summary["benchmarks"] == []


def test_git_sha_matches_repository():
    module = load_script()
    sha = module.git_sha(REPO_ROOT)
    expected = subprocess.run(
        ["git", "rev-parse", "--short", "HEAD"],
        cwd=REPO_ROOT, capture_output=True, text=True, check=True,
    ).stdout.strip()
    assert sha == expected


def test_git_sha_outside_repository(tmp_path):
    module = load_script()
    assert module.git_sha(tmp_path) == "unknown"


def test_pinned_subset_files_exist():
    module = load_script()
    for name in module.PINNED_BENCHMARKS:
        assert (REPO_ROOT / "benchmarks" / name).exists(), name


def test_script_help_runs():
    proc = subprocess.run(
        [sys.executable, str(SCRIPT), "--help"], capture_output=True, text=True
    )
    assert proc.returncode == 0
    assert "BENCH_<sha>.json" in proc.stdout
