"""Property-based tests for the optimisation model (hypothesis)."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import optimal_split, quadratic_roots

rates = st.floats(min_value=0.5, max_value=200.0, allow_nan=False)
counts = st.floats(min_value=0.0, max_value=5000.0, allow_nan=False)
positive_counts = st.floats(min_value=0.5, max_value=5000.0, allow_nan=False)


@settings(max_examples=300, deadline=None)
@given(inbound=rates, q1=counts, q2=counts, q=counts, p=rates)
def test_split_is_feasible_and_conserves_rate(inbound, q1, q2, q, p):
    split = optimal_split(inbound, q1, q2, q, p)
    assert -1e-9 <= split.r1 <= inbound + 1e-9
    assert -1e-9 <= split.r2 <= inbound + 1e-9
    assert math.isclose(split.r1 + split.r2, inbound, rel_tol=1e-9, abs_tol=1e-9)


@settings(max_examples=300, deadline=None)
@given(inbound=rates, q1=positive_counts, q2=positive_counts, q=positive_counts, p=rates)
def test_constraint_t2_not_smaller_than_t1_prime(inbound, q1, q2, q, p):
    """The optimal split never violates the precedence constraint."""
    split = optimal_split(inbound, q1, q2, q, p)
    if math.isinf(split.t2) or math.isinf(split.t1_prime):
        return
    tolerance = 1e-6 + 1e-7 * abs(split.t1_prime)
    assert split.t2 >= split.t1_prime - tolerance


@settings(max_examples=300, deadline=None)
@given(inbound=rates, q1=positive_counts, q2=positive_counts, q=positive_counts, p=rates)
def test_positive_root_is_nonnegative_and_other_root_nonpositive(inbound, q1, q2, q, p):
    r1, r1_neg = quadratic_roots(inbound, q1, q2, q, p)
    assert r1 >= -1e-9
    assert r1_neg <= 1e-9


@settings(max_examples=200, deadline=None)
@given(inbound=rates, q1=positive_counts, q2=positive_counts, q=positive_counts, p=rates,
       delta=st.floats(min_value=0.01, max_value=0.99))
def test_no_feasible_split_beats_the_optimum(inbound, q1, q2, q, p, delta):
    """Any other feasible static split has a larger (or equal) T2."""
    split = optimal_split(inbound, q1, q2, q, p)
    alt_i1 = delta * inbound
    alt_i2 = inbound - alt_i1
    if alt_i1 <= 0 or alt_i2 <= 0:
        return
    alt_t1_prime = q1 / alt_i1 + q / p
    alt_t2 = q2 / alt_i2
    if alt_t2 >= alt_t1_prime - 1e-12:  # alternative is feasible
        assert split.t2 <= alt_t2 + 1e-6


@settings(max_examples=200, deadline=None)
@given(inbound=rates, q1=positive_counts, q2=positive_counts, q=positive_counts, p=rates)
def test_more_inbound_never_hurts(inbound, q1, q2, q, p):
    base = optimal_split(inbound, q1, q2, q, p)
    boosted = optimal_split(inbound * 1.5, q1, q2, q, p)
    if math.isinf(base.t2):
        return
    assert boosted.t2 <= base.t2 + 1e-6
