"""Edge-case tests for the universe metric helpers.

Covers the boundary behaviour the channel reports rely on:
``decile_of`` at exact decile boundaries and for single-channel lineups,
``weighted_mean`` with zero total weight, and ``zap_time_stats`` on empty
and truncated outcome sets.
"""

import pytest

from repro.metrics.collectors import PeerOutcome
from repro.metrics.universe import decile_of, weighted_mean, zap_time_stats


def outcome(node_id, switch_time):
    return PeerOutcome(
        node_id=node_id,
        q0=0,
        finish_old_time=switch_time,
        prepared_new_time=switch_time,
        switch_complete_time=switch_time,
    )


class TestDecileOf:
    def test_exact_decile_boundaries_ten_channels(self):
        # With exactly 10 channels every rank is its own decile.
        assert [decile_of(r, 10) for r in range(10)] == list(range(10))

    def test_exact_decile_boundaries_twenty_channels(self):
        # Rank 2 of 20 is the first rank of decile 1 (2 * 10 // 20 == 1).
        assert decile_of(1, 20) == 0
        assert decile_of(2, 20) == 1
        assert decile_of(17, 20) == 8
        assert decile_of(18, 20) == 9
        assert decile_of(19, 20) == 9

    def test_non_multiple_of_ten_boundaries(self):
        # 12 channels: boundaries fall where rank * 10 crosses a multiple of 12.
        deciles = [decile_of(r, 12) for r in range(12)]
        assert deciles == sorted(deciles)
        assert deciles[0] == 0 and deciles[-1] == 9
        # Deciles 0..9 with 12 channels: two deciles hold two channels.
        assert len(set(deciles)) == 10

    def test_single_channel_lineup_is_decile_zero(self):
        assert decile_of(0, 1) == 0

    def test_fewer_channels_than_deciles_leaves_gaps(self):
        deciles = [decile_of(r, 3) for r in range(3)]
        assert deciles == [0, 3, 6]

    def test_rejects_out_of_range_rank(self):
        with pytest.raises(ValueError):
            decile_of(-1, 10)
        with pytest.raises(ValueError):
            decile_of(10, 10)
        with pytest.raises(ValueError):
            decile_of(0, 0)


class TestWeightedMean:
    def test_weights_values(self):
        assert weighted_mean([(10.0, 1), (20.0, 3)]) == pytest.approx(17.5)

    def test_zero_total_weight_returns_zero(self):
        assert weighted_mean([(10.0, 0), (20.0, 0)]) == 0.0

    def test_empty_pairs_return_zero(self):
        assert weighted_mean([]) == 0.0

    def test_negative_total_weight_returns_zero(self):
        # Defensive: malformed inputs must not divide by a negative total.
        assert weighted_mean([(10.0, -1)]) == 0.0


class TestZapTimeStats:
    def test_empty_outcomes_are_all_zero(self):
        stats = zap_time_stats([], horizon=50.0)
        assert stats.peers == 0
        assert stats.mean == 0.0 and stats.p99 == 0.0
        assert stats.unfinished == 0

    def test_unfinished_peers_contribute_horizon(self):
        stats = zap_time_stats([outcome(1, 10.0), outcome(2, None)], horizon=50.0)
        assert stats.peers == 2
        assert stats.unfinished == 1
        assert stats.mean == pytest.approx(30.0)

    def test_single_peer_percentiles_collapse(self):
        stats = zap_time_stats([outcome(1, 12.0)], horizon=50.0)
        assert stats.p50 == stats.p90 == stats.p99 == pytest.approx(12.0)
