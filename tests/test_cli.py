"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.overlay.trace import parse_trace


def test_parser_knows_all_subcommands():
    parser = build_parser()
    args = parser.parse_args(["figure", "2"])
    assert args.command == "figure" and args.number == "2"
    args = parser.parse_args(["run", "--algorithm", "normal", "--n-nodes", "50"])
    assert args.algorithm == "normal" and args.n_nodes == 50
    args = parser.parse_args(["compare", "--dynamic"])
    assert args.dynamic is True
    args = parser.parse_args(["scenario", "video-conference"])
    assert args.name == "video-conference"
    args = parser.parse_args(["trace", "out.trace", "--n-nodes", "77"])
    assert args.path == "out.trace" and args.n_nodes == 77


def test_figure2_command_prints_table(capsys):
    assert main(["figure", "2"]) == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "normal" in out and "fast" in out


def test_figure2_command_json_output(capsys):
    assert main(["figure", "2", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["figure"] == "2"
    assert len(payload["rows"]) == 2


def test_run_command_small_simulation(capsys):
    code = main(["run", "--n-nodes", "36", "--seed", "2", "--max-time", "70", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["algorithm"] == "fast"
    assert payload["tracked peers"] == 34
    assert payload["avg switch time (s)"] > 0


def test_compare_command_reports_reduction(capsys):
    code = main(["compare", "--n-nodes", "36", "--seed", "2", "--max-time", "70", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert "switch_time_reduction" in payload
    assert payload["n_peers"] == 34


def test_trace_command_writes_parseable_file(tmp_path, capsys):
    target = tmp_path / "synthetic.trace"
    assert main(["trace", str(target), "--n-nodes", "60", "--seed", "3"]) == 0
    assert "wrote 60 records" in capsys.readouterr().out
    records = parse_trace(target)
    assert len(records) == 60


def test_unknown_figure_number_rejected_by_parser():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure", "99"])
