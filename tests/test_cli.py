"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.overlay.trace import parse_trace


def test_parser_knows_all_subcommands():
    parser = build_parser()
    args = parser.parse_args(["figure", "2"])
    assert args.command == "figure" and args.number == "2"
    args = parser.parse_args(["run", "--algorithm", "normal", "--n-nodes", "50"])
    assert args.algorithm == "normal" and args.n_nodes == 50
    args = parser.parse_args(["compare", "--dynamic"])
    assert args.dynamic is True
    args = parser.parse_args(["scenario", "video-conference"])
    assert args.name == "video-conference"
    args = parser.parse_args(["trace", "overlay", "out.trace", "--n-nodes", "77"])
    assert args.path == "out.trace" and args.n_nodes == 77
    args = parser.parse_args(["trace", "run", "--out", "t.json", "--n-nodes", "40"])
    assert args.trace_command == "run" and args.out == "t.json" and args.n_nodes == 40
    args = parser.parse_args(["sweep", "--sizes", "30", "40", "--workers", "4",
                              "--results-dir", "/tmp/r"])
    assert args.sizes == [30, 40] and args.workers == 4 and args.results_dir == "/tmp/r"
    args = parser.parse_args(["figure", "7", "--from-store", "--results-dir", "/tmp/r"])
    assert args.from_store is True
    args = parser.parse_args(["store", "ls", "--results-dir", "/tmp/r"])
    assert args.store_command == "ls"
    args = parser.parse_args(["store", "clear", "--results-dir", "/tmp/r"])
    assert args.store_command == "clear"
    args = parser.parse_args(["workload", "ls"])
    assert args.workload_command == "ls"
    args = parser.parse_args(["workload", "run", "zapping", "--workers", "2",
                              "--repetitions", "3", "--n-nodes", "40",
                              "--results-dir", "/tmp/r", "--from-store"])
    assert args.workload_command == "run" and args.name == "zapping"
    assert args.workers == 2 and args.repetitions == 3 and args.from_store
    args = parser.parse_args(["workload", "compare", "flash-crowd"])
    assert args.workload_command == "compare" and args.name == "flash-crowd"
    args = parser.parse_args(["scenario", "video-conference", "--compare",
                              "--results-dir", "/tmp/r"])
    assert args.compare and args.results_dir == "/tmp/r"


def test_figure2_command_prints_table(capsys):
    assert main(["figure", "2"]) == 0
    out = capsys.readouterr().out
    assert "Figure 2" in out
    assert "normal" in out and "fast" in out


def test_figure2_command_json_output(capsys):
    assert main(["figure", "2", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["figure"] == "2"
    assert len(payload["rows"]) == 2


def test_run_command_small_simulation(capsys):
    code = main(["run", "--n-nodes", "36", "--seed", "2", "--max-time", "70", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["algorithm"] == "fast"
    assert payload["tracked peers"] == 34
    assert payload["avg switch time (s)"] > 0


def test_compare_command_reports_reduction(capsys):
    code = main(["compare", "--n-nodes", "36", "--seed", "2", "--max-time", "70", "--json"])
    assert code == 0
    payload = json.loads(capsys.readouterr().out)
    assert "switch_time_reduction" in payload
    assert payload["n_peers"] == 34


def test_trace_overlay_command_writes_parseable_file(tmp_path, capsys):
    target = tmp_path / "synthetic.trace"
    assert main(["trace", "overlay", str(target), "--n-nodes", "60", "--seed", "3"]) == 0
    assert "wrote 60 records" in capsys.readouterr().out
    records = parse_trace(target)
    assert len(records) == 60


def test_trace_run_command_writes_chrome_trace(tmp_path, capsys):
    target = tmp_path / "run.trace.json"
    argv = ["trace", "run", "--out", str(target), "--n-nodes", "36",
            "--seed", "2", "--max-time", "70", "--json"]
    assert main(argv) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["events"] > 0
    assert "period.decide" in payload["spans"]
    document = json.loads(target.read_text(encoding="utf-8"))
    assert document["traceEvents"] and document["displayTimeUnit"] == "ms"
    phases = {event["ph"] for event in document["traceEvents"]}
    assert "X" in phases


def test_run_with_telemetry_persists_document_and_identical_metrics(
        tmp_path, capsys):
    argv = ["run", "--n-nodes", "36", "--seed", "2", "--max-time", "70", "--json"]
    assert main(argv) == 0
    plain = json.loads(capsys.readouterr().out)
    store_dir = tmp_path / "results"
    assert main(argv + ["--telemetry", "--results-dir", str(store_dir)]) == 0
    instrumented = json.loads(capsys.readouterr().out)
    # telemetry never changes results (wallclock is a measurement, not a result)
    plain.pop("wallclock (s)"), instrumented.pop("wallclock (s)")
    assert instrumented == plain
    from repro.experiments.store import ResultStore

    store = ResultStore(store_dir)
    keys = [key for key in store.keys() if key.startswith("telemetry-")]
    assert len(keys) == 1
    document = store.load_telemetry(keys[0])
    assert document["kind"] == "telemetry"
    assert document["spans"]["period.decide"]["count"] > 0


def test_unknown_figure_number_rejected_by_parser():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure", "99"])


def test_sweep_command_runs_and_persists(tmp_path, capsys):
    store_dir = tmp_path / "results"
    argv = ["sweep", "--sizes", "30", "--seed", "2", "--max-time", "70",
            "--results-dir", str(store_dir), "--json"]
    assert main(argv) == 0
    first = json.loads(capsys.readouterr().out)
    assert [row["n_nodes"] for row in first["rows"]] == [30]
    assert first["rows"][0]["normal_switch_time"] == first["rows"][0]["normal_prepare_new"]
    # pair + aggregated sweep entry on disk (excluding metadata sidecars)
    def documents(pattern):
        return [p for p in store_dir.glob(pattern) if not p.name.endswith(".meta.json")]

    assert len(documents("pair-*.json")) == 1
    assert len(documents("sweep-*.json")) == 1

    # The repeated invocation replays from the store: identical rows, and no
    # simulation (run_single would explode if called).
    import repro.experiments.runner as runner_module

    def _boom(config):
        raise AssertionError("simulated despite a warm store")

    original = runner_module.run_single
    runner_module.run_single = _boom
    try:
        assert main(argv) == 0
    finally:
        runner_module.run_single = original
    second = json.loads(capsys.readouterr().out)
    assert second["rows"] == first["rows"]


def test_figure_from_store_requires_populated_store(tmp_path, capsys):
    store_dir = tmp_path / "results"
    argv_missing = ["figure", "7", "--sizes", "30", "--seed", "2",
                    "--from-store", "--results-dir", str(store_dir)]
    assert main(argv_missing) == 1
    assert "not in the store" in capsys.readouterr().err


def test_store_ls_and_clear_commands(tmp_path, capsys):
    store_dir = tmp_path / "results"
    assert main(["sweep", "--sizes", "30", "--seed", "2", "--max-time", "70",
                 "--results-dir", str(store_dir)]) == 0
    capsys.readouterr()
    assert main(["store", "ls", "--results-dir", str(store_dir), "--json"]) == 0
    entries = json.loads(capsys.readouterr().out)
    assert sorted(e["kind"] for e in entries) == ["pair", "sweep"]
    assert main(["store", "clear", "--results-dir", str(store_dir)]) == 0
    assert "removed 2" in capsys.readouterr().out
    assert main(["store", "ls", "--results-dir", str(store_dir)]) == 0
    assert "empty" in capsys.readouterr().out


def test_store_command_without_results_dir_errors(monkeypatch):
    monkeypatch.delenv("REPRO_RESULTS_DIR", raising=False)
    with pytest.raises(SystemExit):
        main(["store", "ls"])


def test_workload_ls_lists_the_library(capsys):
    assert main(["workload", "ls", "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    names = {row["name"] for row in rows}
    assert {"zapping", "flash-crowd", "paper-baseline"} <= names
    zapping = next(row for row in rows if row["name"] == "zapping")
    assert zapping["switches"] == 4
    assert "zap-1" in zapping["phases"]


def test_workload_run_persists_and_replays(tmp_path, capsys, monkeypatch):
    store_dir = tmp_path / "results"
    argv = ["workload", "run", "zapping", "--n-nodes", "40", "--seed", "2",
            "--results-dir", str(store_dir), "--json"]
    assert main(argv) == 0
    first = json.loads(capsys.readouterr().out)
    assert first["workload"] == "zapping"
    assert first["n_switches"] == 4
    assert first["simulated"] == 1 and first["replayed"] == 0
    assert [row["switch"] for row in first["switch_rows"]] == [1, 2, 3, 4]
    assert {row["class"] for row in first["class_rows"]} == {"adsl", "cable", "fiber"}

    # The repeated invocation replays from the store without simulating.
    import repro.workloads.runner as runner_module

    def _boom(spec, seed):
        raise AssertionError("simulated despite a warm store")

    monkeypatch.setattr(runner_module, "run_workload_rep", _boom)
    assert main(argv + ["--from-store"]) == 0
    second = json.loads(capsys.readouterr().out)
    assert second["replayed"] == 1 and second["simulated"] == 0
    assert second["switch_rows"] == first["switch_rows"]
    assert second["class_rows"] == first["class_rows"]
    assert second["phase_rows"] == first["phase_rows"]


def test_workload_compare_prints_reduction(tmp_path, capsys):
    store_dir = tmp_path / "results"
    assert main(["workload", "compare", "paper-baseline", "--n-nodes", "40",
                 "--results-dir", str(store_dir)]) == 0
    out = capsys.readouterr().out
    assert "mean switch-time reduction:" in out
    assert "per-phase playback quality" not in out  # compare prints only the comparison


def test_workload_from_store_requires_populated_store(tmp_path, capsys):
    argv = ["workload", "run", "zapping", "--from-store",
            "--results-dir", str(tmp_path / "empty")]
    assert main(argv) == 1
    assert "not in the store" in capsys.readouterr().err


def test_scenario_from_store_requires_populated_store(tmp_path, capsys):
    argv = ["scenario", "video-conference", "--from-store",
            "--results-dir", str(tmp_path / "empty")]
    assert main(argv) == 1
    assert "not in the store" in capsys.readouterr().err


def test_parser_knows_universe_subcommands():
    parser = build_parser()
    args = parser.parse_args(["universe", "ls"])
    assert args.universe_command == "ls"
    args = parser.parse_args(["universe", "run", "lineup-zipf", "--workers", "4",
                              "--channels", "8", "--viewers", "200",
                              "--repetitions", "2", "--results-dir", "/tmp/r",
                              "--from-store", "--json"])
    assert args.universe_command == "run" and args.name == "lineup-zipf"
    assert args.workers == 4 and args.channels == 8 and args.viewers == 200
    assert args.from_store and args.json
    args = parser.parse_args(["universe", "compare", "lineup-mini"])
    assert args.universe_command == "compare" and args.name == "lineup-mini"


def test_universe_ls_lists_the_library(capsys):
    assert main(["universe", "ls", "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    names = {row["name"] for row in rows}
    assert {"lineup-zipf", "prime-time", "lineup-mini"} <= names
    zipf = next(row for row in rows if row["name"] == "lineup-zipf")
    assert zipf["channels"] == 20 and zipf["viewers"] == 1000


def test_universe_run_persists_and_replays(tmp_path, capsys, monkeypatch):
    store_dir = tmp_path / "results"
    argv = ["universe", "run", "lineup-mini", "--channels", "3", "--viewers", "30",
            "--seed", "4", "--results-dir", str(store_dir), "--json"]
    assert main(argv) == 0
    first = json.loads(capsys.readouterr().out)
    assert first["universe"] == "lineup-mini"
    assert first["n_channels"] == 3 and first["n_viewers"] == 30
    assert first["simulated"] == 1 and first["replayed"] == 0
    assert len(first["channel_rows"]) == 3
    assert first["decile_rows"]

    # The repeated invocation replays from the store without simulating.
    import repro.channels.runner as runner_module

    def _boom(spec, seed):
        raise AssertionError("simulated despite a warm store")

    monkeypatch.setattr(runner_module, "run_universe_rep", _boom)
    assert main(argv + ["--from-store"]) == 0
    second = json.loads(capsys.readouterr().out)
    assert second["replayed"] == 1 and second["simulated"] == 0
    assert second["channel_rows"] == first["channel_rows"]
    assert second["decile_rows"] == first["decile_rows"]


def test_universe_compare_json_is_decile_focused(tmp_path, capsys):
    argv = ["universe", "compare", "lineup-mini", "--channels", "3",
            "--viewers", "30", "--results-dir", str(tmp_path / "r"), "--json"]
    assert main(argv) == 0
    payload = json.loads(capsys.readouterr().out)
    assert "decile_rows" in payload and "mean_reduction" in payload
    assert "channel_rows" not in payload


def test_universe_from_store_requires_populated_store(tmp_path, capsys):
    argv = ["universe", "run", "lineup-mini", "--from-store",
            "--results-dir", str(tmp_path / "empty")]
    assert main(argv) == 1
    assert "not in the store" in capsys.readouterr().err


def test_workload_compare_json_is_switch_focused(tmp_path, capsys):
    argv = ["workload", "compare", "paper-baseline", "--n-nodes", "40",
            "--results-dir", str(tmp_path / "r"), "--json"]
    assert main(argv) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["workload"] == "paper-baseline"
    assert "mean_reduction" in payload and "switch_rows" in payload
    assert "class_rows" not in payload and "phase_rows" not in payload


def test_version_flag_prints_package_version(capsys):
    from repro.cli import _package_version

    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    out = capsys.readouterr().out
    assert _package_version() in out
    assert "repro-gossip" in out


def test_parser_knows_net_subcommands_and_topology_flags():
    parser = build_parser()
    args = parser.parse_args(["net", "ls"])
    assert args.command == "net" and args.net_command == "ls"
    args = parser.parse_args(["net", "show", "transcontinental"])
    assert args.net_command == "show" and args.name == "transcontinental"
    args = parser.parse_args(["run", "--topology", "metro"])
    assert args.topology == "metro"
    args = parser.parse_args(["compare", "--topology", "transcontinental"])
    assert args.topology == "transcontinental"
    args = parser.parse_args(["workload", "run", "zapping", "--topology", "metro"])
    assert args.topology == "metro"
    args = parser.parse_args(["universe", "run", "lineup-mini",
                              "--topology", "transcontinental"])
    assert args.topology == "transcontinental"
    args = parser.parse_args(["scenario", "video-conference", "--topology", "metro"])
    assert args.topology == "metro"
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--topology", "atlantis"])


def test_net_ls_lists_library(capsys):
    assert main(["net", "ls"]) == 0
    out = capsys.readouterr().out
    assert "metro" in out and "transcontinental" in out


def test_net_ls_json(capsys):
    assert main(["net", "ls", "--json"]) == 0
    rows = json.loads(capsys.readouterr().out)
    names = {row["name"] for row in rows}
    assert {"metro", "transcontinental"} <= names


def test_net_show_prints_matrix(capsys):
    assert main(["net", "show", "transcontinental"]) == 0
    out = capsys.readouterr().out
    assert "latency matrix" in out
    assert "na-east" in out and "asia" in out
    assert "locality_bias: 4.0" in out


def test_net_show_json_round_trips(capsys):
    from repro.net.library import get_topology
    from repro.net.topology import NetTopology

    assert main(["net", "show", "metro", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert NetTopology.from_dict(payload) == get_topology("metro")


def test_run_command_with_topology_reports_net_stats(capsys):
    argv = ["run", "--n-nodes", "40", "--seed", "3", "--max-time", "40",
            "--topology", "metro", "--json"]
    assert main(argv) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["net messages"] > 0
    assert payload["avg switch time (s)"] > 0


def test_compare_command_with_topology_reports_regions(capsys):
    argv = ["compare", "--n-nodes", "40", "--seed", "3", "--max-time", "40",
            "--topology", "metro", "--json"]
    assert main(argv) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["topology"] == "metro"
    regions = {row["region"] for row in payload["regions"]}
    assert regions <= {"core", "suburbs", "exurbs"}
    assert len(regions) >= 1


def test_universe_run_with_topology_persists_net_document(tmp_path, capsys):
    results = tmp_path / "results"
    argv = ["universe", "run", "lineup-mini", "--channels", "3", "--viewers", "36",
            "--topology", "metro", "--results-dir", str(results), "--json"]
    assert main(argv) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["topology"] == "metro"
    from repro.experiments.store import ResultStore

    store = ResultStore(results)
    assert any(key.startswith("net-") for key in store.keys())


# --------------------------------------------------------------------------- #
# sharded runtime, store backends, bench trend
# --------------------------------------------------------------------------- #
def test_parser_knows_dist_and_backend_flags():
    parser = build_parser()
    args = parser.parse_args(["universe", "run", "lineup-mini", "--shards", "4",
                              "--workers", "2", "--store-backend", "sqlite",
                              "--results-dir", "/tmp/r"])
    assert args.shards == 4 and args.store_backend == "sqlite"
    args = parser.parse_args(["store", "ls", "--results-dir", "/tmp/r",
                              "--limit", "3", "--kind", "run"])
    assert args.limit == 3 and args.kind == "run"
    args = parser.parse_args(["store", "migrate", "--results-dir", "/tmp/r",
                              "--to", "sqlite", "--dest-dir", "/tmp/d"])
    assert args.to_backend == "sqlite" and args.dest_dir == "/tmp/d"
    args = parser.parse_args(["bench", "trend", "--bench-dir", "/tmp/b", "--json"])
    assert args.bench_command == "trend" and args.bench_dir == "/tmp/b" and args.json


def test_universe_run_sharded_on_sqlite_persists_and_replays(tmp_path, capsys):
    store_dir = tmp_path / "results"
    argv = ["universe", "run", "lineup-mini", "--channels", "3", "--viewers", "30",
            "--seed", "4", "--repetitions", "2", "--shards", "4", "--workers", "2",
            "--store-backend", "sqlite", "--results-dir", str(store_dir), "--json"]
    assert main(argv) == 0
    first = json.loads(capsys.readouterr().out)
    assert first["simulated"] == 2 and first["replayed"] == 0
    assert (store_dir / "store.sqlite").exists()
    assert not (store_dir / "journal").exists()  # discarded on success
    assert main(argv + ["--from-store"]) == 0
    second = json.loads(capsys.readouterr().out)
    assert second["replayed"] == 2 and second["simulated"] == 0
    assert second["channel_rows"] == first["channel_rows"]


def test_store_ls_kind_and_limit_flags(tmp_path, capsys):
    store_dir = tmp_path / "results"
    assert main(["sweep", "--sizes", "30", "--seed", "2", "--max-time", "70",
                 "--results-dir", str(store_dir)]) == 0
    capsys.readouterr()
    assert main(["store", "ls", "--results-dir", str(store_dir),
                 "--kind", "run", "--json"]) == 0
    entries = json.loads(capsys.readouterr().out)
    assert [e["kind"] for e in entries] == ["pair"]  # "run" aliases "pair"
    assert main(["store", "ls", "--results-dir", str(store_dir),
                 "--limit", "1", "--json"]) == 0
    assert len(json.loads(capsys.readouterr().out)) == 1
    assert main(["store", "ls", "--results-dir", str(store_dir),
                 "--kind", "universe", "--json"]) == 0
    assert json.loads(capsys.readouterr().out) == []


def test_store_migrate_between_backends(tmp_path, capsys):
    store_dir = tmp_path / "results"
    assert main(["sweep", "--sizes", "30", "--seed", "2", "--max-time", "70",
                 "--results-dir", str(store_dir)]) == 0
    capsys.readouterr()
    # json -> sqlite in place, then ls through the sqlite backend
    assert main(["store", "migrate", "--results-dir", str(store_dir),
                 "--to", "sqlite"]) == 0
    assert "migrated 2 document(s)" in capsys.readouterr().out
    assert main(["store", "ls", "--results-dir", str(store_dir),
                 "--store-backend", "sqlite", "--json"]) == 0
    entries = json.loads(capsys.readouterr().out)
    assert sorted(e["kind"] for e in entries) == ["pair", "sweep"]
    # migrating a store onto itself is refused
    assert main(["store", "migrate", "--results-dir", str(store_dir),
                 "--to", "json"]) == 1


def test_bench_trend_renders_trajectory(tmp_path, capsys):
    (tmp_path / "BENCH_aaa.json").write_text(json.dumps({
        "git_sha": "aaa", "created": "2026-01-01T00:00:00",
        "benchmarks": [{"name": "bench_x.py::test_speed", "mean_s": 2.0}],
    }), encoding="utf-8")
    (tmp_path / "BENCH_bbb.json").write_text(json.dumps({
        "git_sha": "bbb", "created": "2026-02-01T00:00:00",
        "benchmarks": [{"name": "bench_x.py::test_speed", "mean_s": 1.0}],
    }), encoding="utf-8")
    assert main(["bench", "trend", "--bench-dir", str(tmp_path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summaries"] == ["BENCH_aaa.json", "BENCH_bbb.json"]
    assert [row["git_sha"] for row in payload["rows"]] == ["aaa", "bbb"]
    assert payload["rows"][0]["change"] is None
    assert payload["rows"][1]["change"] == pytest.approx(-0.5)
    assert main(["bench", "trend", "--bench-dir", str(tmp_path)]) == 0
    table = capsys.readouterr().out
    assert "test_speed" in table and "-50.0%" in table


def test_bench_trend_empty_directory(tmp_path, capsys):
    assert main(["bench", "trend", "--bench-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "need >= 2 timestamped BENCH_*.json summaries" in out
    assert str(tmp_path) in out and "found 0" in out
    assert "run_benchmarks.py" in out  # the fix-it hint


def test_bench_trend_single_summary_needs_a_second(tmp_path, capsys):
    (tmp_path / "BENCH_aaa.json").write_text(json.dumps({
        "git_sha": "aaa", "created": "2026-01-01T00:00:00",
        "benchmarks": [{"name": "bench_x.py::test_speed", "mean_s": 2.0}],
    }), encoding="utf-8")
    assert main(["bench", "trend", "--bench-dir", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "need >= 2" in out and "found 1" in out


# --------------------------------------------------------------------------- #
# protocol probes: the `probe` command, `run --probes`, live progress
# --------------------------------------------------------------------------- #
def test_parser_knows_probe_and_progress_flags():
    parser = build_parser()
    args = parser.parse_args(["probe", "--n-nodes", "60", "--peer", "5",
                              "--seg", "100", "--last", "10", "--json"])
    assert args.command == "probe" and args.peer == 5 and args.seg == 100
    assert args.last == 10 and args.json
    args = parser.parse_args(["run", "--probes", "--results-dir", "/tmp/r"])
    assert args.probes is True
    args = parser.parse_args(["universe", "run", "lineup-mini", "--shards", "2",
                              "--progress", "--results-dir", "/tmp/r"])
    assert args.progress is True


def test_probe_command_prints_lifecycle_funnel_and_health(capsys):
    assert main(["probe", "--n-nodes", "36", "--seed", "2",
                 "--max-time", "70"]) == 0
    out = capsys.readouterr().out
    assert "segment lifecycle:" in out
    assert "requested" in out and "delivered" in out and "played" in out
    assert "startup funnel:" in out and "playback_mean_s" in out
    assert "swarm health" in out and "fill_p50" in out


def test_probe_command_peer_timeline(capsys):
    assert main(["probe", "--n-nodes", "36", "--seed", "2", "--max-time", "70",
                 "--peer", "5", "--last", "5"]) == 0
    out = capsys.readouterr().out
    assert "segment lifecycle of peer 5" in out
    assert "(5 of" in out and "newest last" in out
    assert "t_sim" in out and "supplier" in out and "wire_bits" in out
    # a peer outside the overlay has no recorded events
    assert main(["probe", "--n-nodes", "36", "--seed", "2", "--max-time", "70",
                 "--peer", "999"]) == 0
    assert "no lifecycle events recorded for peer 999" in capsys.readouterr().out


def test_probe_command_json_snapshot(capsys):
    assert main(["probe", "--n-nodes", "36", "--seed", "2", "--max-time", "70",
                 "--peer", "5", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["enabled"] is True
    assert payload["lifecycle"]["events"] > 0
    assert payload["health"]["periods"] > 0
    assert payload["funnel"]["peers"] == 34
    assert payload["timeline"][0]["peer"] == 5


def test_run_probes_flag_persists_the_probes_block(tmp_path, capsys):
    from repro.experiments.store import ResultStore

    store_dir = tmp_path / "results"
    assert main(["run", "--n-nodes", "36", "--seed", "2", "--max-time", "70",
                 "--probes", "--results-dir", str(store_dir), "--json"]) == 0
    capsys.readouterr()
    store = ResultStore(store_dir)
    keys = [key for key in store.keys() if key.startswith("telemetry-")]
    assert len(keys) == 1
    probes = store.load_telemetry(keys[0])["probes"]
    assert probes["enabled"] is True
    assert probes["lifecycle"]["events"] > 0
    assert probes["health"]["periods"] > 0


def test_universe_run_progress_prints_live_status(tmp_path, capsys):
    store_dir = tmp_path / "results"
    assert main(["universe", "run", "lineup-mini", "--channels", "3",
                 "--viewers", "30", "--seed", "4", "--repetitions", "1",
                 "--shards", "2", "--workers", "2", "--progress",
                 "--results-dir", str(store_dir), "--json"]) == 0
    captured = capsys.readouterr()
    assert json.loads(captured.out)["simulated"] == 1
    lines = [l for l in captured.err.splitlines() if l.startswith("[shards]")]
    assert lines, "no progress lines on stderr"
    assert lines[0].startswith("[shards] 0/2 done")
    assert lines[-1].startswith("[shards] 2/2 done | all shards finished")


def test_trace_overflow_warning_is_one_loud_line(capsys):
    from repro.cli import _warn_trace_overflow

    class _Tracer:
        dropped = 5

        def events(self):
            return [{}] * 3

    class _Telemetry:
        tracer = _Tracer()

    _warn_trace_overflow(_Telemetry())
    err = capsys.readouterr().err
    assert err.count("warning:") == 1
    assert "5 events were dropped" in err
    assert "max_trace_events" in err  # the fix-it hint
    # silent when nothing was dropped
    _Telemetry.tracer.dropped = 0
    _warn_trace_overflow(_Telemetry())
    assert capsys.readouterr().err == ""
