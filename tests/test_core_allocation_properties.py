"""Property-based tests for the four-case allocation (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import AllocationCase, allocate_for_model

rates = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
positive_rates = st.floats(min_value=0.5, max_value=100.0, allow_nan=False)
counts = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)


@settings(max_examples=400, deadline=None)
@given(inbound=positive_rates, q1=counts, q2=counts, q=counts, p=positive_rates,
       o1=rates, o2=rates)
def test_allocation_respects_all_capacity_constraints(inbound, q1, q2, q, p, o1, o2):
    allocation = allocate_for_model(inbound, q1, q2, q, p, o1, o2)
    assert allocation.i1 >= -1e-9
    assert allocation.i2 >= -1e-9
    assert allocation.i1 <= o1 + 1e-9
    assert allocation.i2 <= o2 + 1e-9
    assert allocation.total <= inbound + 1e-9
    assert isinstance(allocation.case, AllocationCase)


@settings(max_examples=400, deadline=None)
@given(inbound=positive_rates, q1=counts, q2=counts, q=counts, p=positive_rates)
def test_allocation_reduces_to_optimum_when_unconstrained(inbound, q1, q2, q, p):
    allocation = allocate_for_model(inbound, q1, q2, q, p, o1=1e6, o2=1e6)
    assert allocation.case is AllocationCase.OPTIMUM_FEASIBLE
    assert abs(allocation.i1 - allocation.split.r1) < 1e-6
    assert abs(allocation.i2 - allocation.split.r2) < 1e-6


@settings(max_examples=400, deadline=None)
@given(inbound=positive_rates, q1=counts, q2=counts, q=counts, p=positive_rates,
       o1=rates, o2=rates)
def test_case_classification_consistent_with_inputs(inbound, q1, q2, q, p, o1, o2):
    allocation = allocate_for_model(inbound, q1, q2, q, p, o1, o2)
    r1, r2 = allocation.split.r1, allocation.split.r2
    if allocation.case is AllocationCase.OPTIMUM_FEASIBLE:
        assert r1 <= o1 and r2 <= o2
    elif allocation.case is AllocationCase.NEW_LIMITED:
        assert r1 <= o1 and r2 > o2
    elif allocation.case is AllocationCase.OLD_LIMITED:
        assert r1 > o1 and r2 <= o2
    else:
        assert r1 > o1 and r2 > o2


@settings(max_examples=300, deadline=None)
@given(inbound=positive_rates, q1=counts, q2=counts, q=counts, p=positive_rates,
       o1=rates, o2=rates, boost=st.floats(min_value=1.0, max_value=5.0))
def test_more_new_stream_supply_never_reduces_its_allocation(inbound, q1, q2, q, p, o1, o2, boost):
    base = allocate_for_model(inbound, q1, q2, q, p, o1, o2)
    boosted = allocate_for_model(inbound, q1, q2, q, p, o1, o2 * boost)
    assert boosted.i2 >= base.i2 - 1e-6
