"""Tests for the parallel sweep runner: determinism and store integration.

The headline guarantee: a sweep run with ``workers=4`` produces
``SweepPoint`` rows *bit-identical* to the serial run at the same seed,
because every ``(size, repetition)`` pair is an independent simulation
deterministically seeded with ``seed + repetition`` and aggregation
consumes results in fixed task order.
"""

import pytest

from repro.experiments.parallel import ParallelSweepRunner, build_sweep_tasks
from repro.experiments.store import ResultStore
from repro.experiments.sweeps import clear_sweep_cache, run_size_sweep

OVERRIDES = {"max_time": 70.0, "old_stream_segments": 400, "lookahead": 120}


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_sweep_cache()
    yield
    clear_sweep_cache()


def test_build_sweep_tasks_order_and_seeding():
    tasks = build_sweep_tasks([30, 40], seed=5, repetitions=2, overrides=OVERRIDES)
    assert [(t.n_nodes, t.repetition) for t in tasks] == [
        (30, 0), (30, 1), (40, 0), (40, 1)
    ]
    assert [t.index for t in tasks] == [0, 1, 2, 3]
    # repetition k uses seed + k, independently per size
    assert [t.config.seed for t in tasks] == [5, 6, 5, 6]
    # sweep tasks never record per-round series (memory at scale)
    assert all(t.config.record_rounds is False for t in tasks)
    assert all(t.config.max_time == 70.0 for t in tasks)


def test_workers_must_be_positive():
    with pytest.raises(ValueError):
        ParallelSweepRunner(workers=0)


def test_repetitions_must_be_positive():
    with pytest.raises(ValueError):
        run_size_sweep([30], seed=1, repetitions=0, overrides=OVERRIDES)


def test_pairs_persist_incrementally_even_when_a_later_task_fails(tmp_path, monkeypatch):
    store = ResultStore(tmp_path)
    import repro.experiments.parallel as parallel_module

    real = parallel_module._execute_pair
    calls = []

    def _fail_on_second(config):
        calls.append(config)
        if len(calls) == 2:
            raise RuntimeError("simulated crash mid-sweep")
        return real(config)

    monkeypatch.setattr(parallel_module, "_execute_pair", _fail_on_second)
    with pytest.raises(RuntimeError):
        run_size_sweep([30, 36], seed=1, repetitions=1, overrides=OVERRIDES, store=store)
    # the completed first pair survived the crash: the rerun resumes from it
    assert len([k for k in store.keys() if k.startswith("pair-")]) == 1


def test_storeless_sweeps_share_one_memo_regardless_of_workers():
    kwargs = dict(seed=3, repetitions=1, overrides=OVERRIDES)
    first = run_size_sweep([30], workers=2, **kwargs)
    # same parameterisation, different workers: served from the same memo,
    # so figures 6/7/8 share one sweep no matter how each was invoked
    assert run_size_sweep([30], workers=2, **kwargs) is first
    assert run_size_sweep([30], workers=1, **kwargs) is first
    assert run_size_sweep([30], workers=4, **kwargs) is first


def test_parallel_sweep_is_bit_identical_to_serial():
    kwargs = dict(seed=1, repetitions=3, overrides=OVERRIDES)
    serial = run_size_sweep([30, 36], **kwargs)
    parallel = run_size_sweep([30, 36], workers=4, **kwargs)
    assert parallel == serial  # exact dataclass equality: bit-identical floats
    assert [p.repetitions for p in parallel.points] == [3, 3]


def test_parallel_sweep_with_store_matches_and_replays(tmp_path, monkeypatch):
    kwargs = dict(seed=1, repetitions=2, overrides=OVERRIDES)
    serial = run_size_sweep([30, 36], **kwargs)

    store = ResultStore(tmp_path)
    parallel = run_size_sweep([30, 36], workers=2, store=store, **kwargs)
    assert parallel == serial
    # one pair document per (size, repetition) plus the aggregated sweep
    assert len([k for k in store.keys() if k.startswith("pair-")]) == 4
    assert len([k for k in store.keys() if k.startswith("sweep-")]) == 1

    # a repeated invocation never reaches the executor
    import repro.experiments.parallel as parallel_module

    monkeypatch.setattr(
        parallel_module, "_execute_pair",
        lambda config: (_ for _ in ()).throw(AssertionError("re-simulated")),
    )
    replay = run_size_sweep([30, 36], workers=2, store=store, **kwargs)
    assert replay == serial


def test_partial_store_runs_only_missing_pairs(tmp_path):
    store = ResultStore(tmp_path)
    kwargs = dict(seed=1, repetitions=1, overrides=OVERRIDES)
    run_size_sweep([30], store=store, **kwargs)
    assert len([k for k in store.keys() if k.startswith("pair-")]) == 1

    # extending the sweep reuses the stored size-30 pair and adds size 36
    extended = run_size_sweep([30, 36], store=store, **kwargs)
    assert [p.n_nodes for p in extended.points] == [30, 36]
    assert len([k for k in store.keys() if k.startswith("pair-")]) == 2
    # the size-30 point is identical to the one computed from the store alone
    alone = run_size_sweep([30], store=store, **kwargs)
    assert extended.points[0] == alone.points[0]


def test_replay_only_store_raises_for_missing_sweep(tmp_path):
    store = ResultStore(tmp_path, replay_only=True)
    from repro.experiments.store import MissingResultError

    with pytest.raises(MissingResultError):
        run_size_sweep([30], seed=1, repetitions=1, overrides=OVERRIDES, store=store)
