"""Tests for the figure generators (tiny overlays; shapes, not magnitudes)."""

import pytest

from repro.experiments.figures import (
    FIGURE_GENERATORS,
    figure2,
    figure5,
    figure7,
    figure8,
    generate_figure,
)
from repro.experiments.sweeps import clear_sweep_cache


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_sweep_cache()
    yield
    clear_sweep_cache()


TINY_SIZES = [30, 40]


def test_figure2_reproduces_ordering_difference():
    result = figure2()
    assert result.figure_id == "2"
    rows = {row["algorithm"]: row for row in result.rows}
    assert rows["normal"]["old_requested"] == 5
    assert rows["normal"]["new_requested"] == 2
    # the fast algorithm interleaves: it requests fewer old and more new
    assert rows["fast"]["old_requested"] < 5
    assert rows["fast"]["new_requested"] > 2
    assert rows["normal"]["order"].startswith("S1#")
    assert result.to_text().startswith("Figure 2")


def test_figure5_ratio_track_series_shapes():
    result = figure5(n_nodes=36, seed=2, max_time=70.0)
    assert result.figure_id == "5"
    assert set(result.series) == {
        "normal_undelivered_ratio_S1",
        "fast_undelivered_ratio_S1",
        "normal_delivered_ratio_S2",
        "fast_delivered_ratio_S2",
    }
    for name, series in result.series.items():
        values = [v for _, v in series]
        assert all(-1e-9 <= v <= 1.0 + 1e-9 for v in values)
        if "undelivered" in name:
            assert values[-1] == pytest.approx(0.0, abs=1e-9)
        else:
            assert values[-1] == pytest.approx(1.0, abs=1e-9)
    assert result.rows and "time" in result.rows[0]
    assert result.meta["n_nodes"] == 36


def test_figure7_rows_contain_reduction_per_size():
    result = figure7(sizes=TINY_SIZES, seed=1)
    assert [row["n_nodes"] for row in result.rows] == TINY_SIZES
    for row in result.rows:
        assert row["normal_switch_time"] > 0
        assert row["fast_switch_time"] > 0
        assert -1.0 <= row["reduction_ratio"] <= 1.0
    assert set(result.series) == {"normal_switch_time", "fast_switch_time", "reduction_ratio"}


def test_figure8_overhead_in_plausible_band():
    result = figure8(sizes=TINY_SIZES, seed=1)
    for row in result.rows:
        assert 0.0 < row["fast_overhead"] < 0.2
        assert 0.0 < row["normal_overhead"] < 0.2


def test_sweep_figures_share_cached_simulations():
    # figure6/7/8 on the same sizes should reuse the same sweep: the second
    # call must not redo the (already slow) simulations.  We check object
    # identity of the underlying cached sweep indirectly via equal rows.
    first = figure7(sizes=TINY_SIZES, seed=1)
    second = figure8(sizes=TINY_SIZES, seed=1)
    assert [r["n_nodes"] for r in first.rows] == [r["n_nodes"] for r in second.rows]


def test_generate_figure_dispatcher_and_unknown_figure():
    assert set(FIGURE_GENERATORS) == {"2", "5", "6", "7", "8", "9", "10", "11", "12"}
    result = generate_figure(2)
    assert result.figure_id == "2"
    with pytest.raises(KeyError):
        generate_figure(99)
