"""Tests for the closed-form optimisation model (Section 3)."""

import math

import pytest

from repro.core.model import (
    finish_time_old,
    optimal_split,
    prepare_time_new,
    quadratic_roots,
    switch_time_lower_bound,
)


def test_quadratic_roots_match_paper_equation():
    # Hand-checked example: I=15, Q1=50, Q2=50, Q=10, p=10
    r1, r1_neg = quadratic_roots(15.0, 50.0, 50.0, 10.0, 10.0)
    a = 10.0 * (50.0 + 50.0) / 10.0  # = 100
    disc = (a - 15.0) ** 2 + 4 * 10.0 * 15.0 * 50.0 / 10.0
    expected = (15.0 - a + math.sqrt(disc)) / 2.0
    assert r1 == pytest.approx(expected)
    assert r1_neg < 0.0  # the paper discards the negative root


def test_quadratic_requires_positive_q_and_p():
    with pytest.raises(ValueError):
        quadratic_roots(15.0, 50.0, 50.0, 0.0, 10.0)
    with pytest.raises(ValueError):
        quadratic_roots(15.0, 50.0, 50.0, 10.0, 0.0)


def test_optimal_split_balances_finish_and_prepare_times():
    split = optimal_split(15.0, q1=50.0, q2=50.0, q=10.0, p=10.0)
    # At the optimum the constraint T2 >= T1' is tight: both sides equal.
    assert split.t2 == pytest.approx(split.t1_prime, rel=1e-9)
    assert split.r1 + split.r2 == pytest.approx(15.0)
    assert 0.0 < split.r1 < 15.0


def test_optimal_split_with_no_new_work_gives_everything_to_old():
    split = optimal_split(15.0, q1=30.0, q2=0.0, q=10.0, p=10.0)
    assert split.r1 == pytest.approx(15.0)
    assert split.r2 == pytest.approx(0.0)
    assert split.t2 == 0.0


def test_optimal_split_with_no_old_work_respects_playback_tail():
    split = optimal_split(15.0, q1=0.0, q2=50.0, q=10.0, p=10.0)
    # only the residual playback window Q/p = 1 s constrains T2
    assert split.t2 >= 1.0 - 1e-9
    assert split.r2 <= 50.0 / 1.0
    assert split.r1 + split.r2 == pytest.approx(15.0)


def test_optimal_split_q_zero_falls_back_to_proportional_split():
    split = optimal_split(12.0, q1=30.0, q2=60.0, q=0.0, p=10.0)
    assert split.r1 == pytest.approx(12.0 * 30.0 / 90.0)
    assert split.r2 == pytest.approx(12.0 * 60.0 / 90.0)


def test_optimal_split_zero_inbound_gives_infinite_times():
    split = optimal_split(0.0, q1=10.0, q2=10.0, q=10.0, p=10.0)
    assert split.r1 == 0.0 and split.r2 == 0.0
    assert math.isinf(split.t2)


def test_invalid_arguments_rejected():
    with pytest.raises(ValueError):
        optimal_split(-1.0, 10.0, 10.0, 10.0, 10.0)
    with pytest.raises(ValueError):
        optimal_split(10.0, -1.0, 10.0, 10.0, 10.0)
    with pytest.raises(ValueError):
        optimal_split(10.0, 10.0, 10.0, 10.0, 0.0)


def test_lower_bound_matches_split_t2():
    bound = switch_time_lower_bound(15.0, 40.0, 50.0, 10.0, 10.0)
    split = optimal_split(15.0, 40.0, 50.0, 10.0, 10.0)
    assert bound == pytest.approx(split.t2)


def test_helper_time_formulas():
    assert finish_time_old(q1=30.0, q=10.0, p=10.0, i1=10.0) == pytest.approx(4.0)
    assert prepare_time_new(q2=50.0, i2=10.0) == pytest.approx(5.0)
    assert math.isinf(prepare_time_new(q2=50.0, i2=0.0))
    assert finish_time_old(q1=0.0, q=0.0, p=10.0, i1=0.0) == 0.0


def test_optimum_beats_any_other_static_split():
    """The closed form minimises T2 over all feasible static splits."""
    inbound, q1, q2, q, p = 18.0, 70.0, 50.0, 10.0, 10.0
    best = optimal_split(inbound, q1, q2, q, p)
    for i1_tenths in range(1, int(inbound * 10)):
        i1 = i1_tenths / 10.0
        i2 = inbound - i1
        t1_prime = q1 / i1 + q / p
        t2 = q2 / i2
        if t2 + 1e-9 >= t1_prime:  # feasible static split
            assert best.t2 <= t2 + 1e-6
