"""Tests for experiment configuration helpers."""

import pytest

from repro.experiments.config import (
    BENCH_SWEEP_SIZES,
    PAPER_SWEEP_SIZES,
    ExperimentDefaults,
    make_session_config,
    paper_scale_enabled,
    ratio_track_size,
    sweep_sizes,
)


def test_paper_sweep_sizes_match_the_evaluation_section():
    assert PAPER_SWEEP_SIZES == (100, 500, 1000, 2000, 4000, 8000)
    assert all(size < 1000 for size in BENCH_SWEEP_SIZES)


def test_defaults_quote_paper_parameters():
    defaults = ExperimentDefaults()
    assert defaults.min_degree == 5
    assert defaults.play_rate == 10.0
    assert defaults.buffer_capacity == 600
    assert defaults.startup_quota_old == 10
    assert defaults.startup_quota_new == 50
    assert defaults.inbound_mean == 15.0
    assert defaults.churn_leave_fraction == 0.05
    kwargs = defaults.session_kwargs()
    assert kwargs["tau"] == 1.0


def test_make_session_config_static_and_dynamic():
    static = make_session_config(200, seed=3)
    assert static.n_nodes == 200
    assert static.seed == 3
    assert not static.churn.enabled
    dynamic = make_session_config(200, dynamic=True)
    assert dynamic.churn.enabled
    assert dynamic.churn.leave_fraction == 0.05


def test_make_session_config_overrides_and_algorithm():
    config = make_session_config(150, algorithm="normal", max_time=42.0, lookahead=99)
    assert config.algorithm == "normal"
    assert config.max_time == 42.0
    assert config.lookahead == 99


def test_custom_defaults_flow_through():
    defaults = ExperimentDefaults(startup_quota_new=80, extra_session_kwargs={"max_time": 33.0})
    config = make_session_config(100, defaults=defaults)
    assert config.startup_quota_new == 80
    assert config.max_time == 33.0


def test_scale_helpers_respect_environment(monkeypatch):
    monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
    assert not paper_scale_enabled()
    assert sweep_sizes() == BENCH_SWEEP_SIZES
    assert ratio_track_size() < 1000

    monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
    assert paper_scale_enabled()
    assert sweep_sizes() == PAPER_SWEEP_SIZES
    assert ratio_track_size() == 1000

    # explicit arguments beat the environment
    assert sweep_sizes(paper_scale=False) == BENCH_SWEEP_SIZES
    assert ratio_track_size(paper_scale=False) < 1000
