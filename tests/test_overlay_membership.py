"""Tests for the gossip membership service."""

import numpy as np
import pytest

from repro.overlay.membership import MembershipService
from repro.overlay.topology import NodeInfo, Overlay


def _overlay(n: int = 12, degree_edges=None) -> Overlay:
    overlay = Overlay()
    for i in range(n):
        overlay.add_node(NodeInfo(node_id=i))
    edges = degree_edges or [(i, (i + 1) % n) for i in range(n)]
    for a, b in edges:
        overlay.add_edge(a, b)
    return overlay


def _service(overlay: Overlay, min_degree: int = 3, protected=()):
    return MembershipService(
        overlay, min_degree, np.random.default_rng(5), protected=protected
    )


def test_join_connects_new_node_to_min_degree_partners():
    overlay = _overlay()
    service = _service(overlay, min_degree=3)
    node_id = service.join()
    assert node_id in overlay
    assert overlay.degree(node_id) == 3
    assert service.joins == 1


def test_join_with_explicit_info_advances_id_counter():
    overlay = _overlay()
    service = _service(overlay)
    node_id = service.join(NodeInfo(node_id=100, ping_ms=10.0))
    assert node_id == 100
    assert service.allocate_node_id() == 101


def test_leave_removes_node_and_reports_former_neighbours():
    overlay = _overlay()
    service = _service(overlay)
    former = service.leave(3)
    assert 3 not in overlay
    assert set(former) == {2, 4}
    assert service.leaves == 1


def test_protected_nodes_cannot_leave():
    overlay = _overlay()
    service = _service(overlay, protected={0})
    with pytest.raises(ValueError):
        service.leave(0)


def test_repair_restores_min_degree_after_leave():
    overlay = _overlay()
    service = _service(overlay, min_degree=2)
    former = service.leave(5)
    service.repair(former)
    for node in former:
        assert overlay.degree(node) >= 2


def test_repair_all_nodes_by_default():
    overlay = _overlay()
    service = _service(overlay, min_degree=4)
    added = service.repair()
    assert added > 0
    assert all(overlay.degree(n) >= 4 for n in overlay.node_ids)


def test_random_alive_peer_respects_exclusions():
    overlay = _overlay(n=4, degree_edges=[(0, 1), (1, 2), (2, 3)])
    service = _service(overlay, min_degree=1)
    pick = service.random_alive_peer(exclude=[0, 1, 2])
    assert pick == 3
    assert service.random_alive_peer(exclude=[0, 1, 2, 3]) is None


def test_min_degree_must_be_positive():
    overlay = _overlay()
    with pytest.raises(ValueError):
        MembershipService(overlay, 0, np.random.default_rng(0))


def test_join_on_tiny_overlay_connects_to_everyone():
    overlay = Overlay()
    overlay.add_node(NodeInfo(node_id=0))
    service = MembershipService(overlay, 5, np.random.default_rng(0))
    node_id = service.join()
    assert overlay.degree(node_id) == 1  # only one possible partner


class TestSubCriticalPopulations:
    """Regression: repair degrades gracefully below ``min_degree + 1`` alive."""

    def test_effective_min_degree_tracks_the_population(self):
        overlay = _overlay(n=4)
        service = _service(overlay, min_degree=5)
        assert service.effective_min_degree == 3
        service.leave(3)
        assert service.effective_min_degree == 2

    def test_repair_builds_partial_neighbour_sets(self):
        overlay = _overlay(n=4)  # 4-cycle
        service = _service(overlay, min_degree=5)
        added = service.repair()
        # the best a 4-node overlay can do: the complete graph
        assert added == 2
        assert all(overlay.degree(n) == 3 for n in overlay.node_ids)

    def test_saturated_overlay_repair_is_a_noop(self):
        overlay = _overlay(n=3, degree_edges=[(0, 1), (1, 2), (0, 2)])
        service = _service(overlay, min_degree=5)
        repairs_before = service.repairs
        for _ in range(5):  # repeated rounds must not retry or raise
            assert service.repair() == 0
        assert service.repairs == repairs_before

    def test_repair_never_raises_while_shrinking_to_nothing(self):
        overlay = _overlay(n=6, degree_edges=[(i, (i + 1) % 6) for i in range(6)])
        service = _service(overlay, min_degree=5)
        for node in range(6):
            former = service.leave(node)
            service.repair([n for n in former if n in overlay])
        assert len(overlay) == 0
        assert service.repair() == 0

    def test_join_into_subcritical_overlay_connects_to_everyone(self):
        overlay = _overlay(n=3)
        service = _service(overlay, min_degree=5)
        node_id = service.join()
        assert sorted(overlay.neighbours(node_id)) == [0, 1, 2]
