"""Integration tests for the switch session (small overlays)."""

import dataclasses

import pytest

from repro.churn.model import ChurnConfig
from repro.experiments.config import make_session_config
from repro.streaming.session import (
    ALGORITHM_FACTORIES,
    SessionConfig,
    SwitchSession,
    run_session,
)


def test_session_config_validation():
    with pytest.raises(ValueError):
        SessionConfig(n_nodes=4)
    with pytest.raises(ValueError):
        SessionConfig(n_nodes=50, algorithm="unknown")
    with pytest.raises(ValueError):
        SessionConfig(n_nodes=50, warmup="magic")
    with pytest.raises(ValueError):
        SessionConfig(n_nodes=50, supplier_rate_estimate="psychic")
    with pytest.raises(ValueError):
        SessionConfig(n_nodes=50, old_stream_segments=5)
    with pytest.raises(ValueError):
        SessionConfig(n_nodes=50, max_time=0.0)


def test_with_algorithm_and_factories():
    config = SessionConfig(n_nodes=50, algorithm="fast")
    other = config.with_algorithm("normal")
    assert other.algorithm == "normal"
    assert config.algorithm == "fast"
    assert set(ALGORITHM_FACTORIES) == {"fast", "normal"}
    assert config.make_algorithm().name == "fast"


def test_session_setup_builds_consistent_topology(tiny_config):
    session = SwitchSession(tiny_config)
    overlay = session.overlay
    assert len(overlay) == tiny_config.n_nodes
    assert all(overlay.degree(n) >= tiny_config.min_degree for n in overlay.node_ids)
    assert len(session.sources) == 2
    assert len(session.peers) == tiny_config.n_nodes - 2
    assert session.old_source_id != session.new_source_id
    # the old source holds its whole stream, the new one holds nothing yet
    assert len(session.sources[session.old_source_id].buffer) == tiny_config.old_stream_segments
    assert len(session.sources[session.new_source_id].buffer) == 0


def test_analytic_warmup_seeds_backlogs(tiny_config):
    session = SwitchSession(tiny_config)
    q0s = [peer.q0 for peer in session.peers.values()]
    assert all(q0 is not None and q0 >= 0 for q0 in q0s)
    assert max(q0s) > 0  # someone is behind the live edge
    for peer in session.peers.values():
        assert peer.playback_old is not None and peer.playback_old.started
        assert len(peer.buffer) > 0


def test_full_run_completes_every_peer(tiny_config):
    result = run_session(tiny_config)
    assert result.metrics.unfinished == 0
    assert result.metrics.avg_prepare_new > 0
    assert result.metrics.avg_finish_old > 0
    assert result.metrics.avg_start_time >= result.metrics.avg_prepare_new - 1e-9
    assert result.stop_reason == "all tracked peers switched"
    assert result.n_rounds > 0
    assert 0 < result.overhead_ratio < 0.2
    assert result.switch_plan.id_begin == result.switch_plan.id_end + 1


def test_runs_are_deterministic_for_a_seed(tiny_config):
    first = run_session(tiny_config)
    second = run_session(tiny_config)
    assert first.metrics.avg_prepare_new == second.metrics.avg_prepare_new
    assert first.metrics.avg_finish_old == second.metrics.avg_finish_old
    assert first.overhead_ratio == second.overhead_ratio


def test_different_seeds_differ(tiny_config):
    other = dataclasses.replace(tiny_config, seed=tiny_config.seed + 1)
    a = run_session(tiny_config)
    b = run_session(other)
    assert (
        a.metrics.avg_prepare_new != b.metrics.avg_prepare_new
        or a.metrics.avg_finish_old != b.metrics.avg_finish_old
    )


def test_round_series_recorded_and_monotone(tiny_config):
    result = run_session(tiny_config)
    rounds = result.metrics.rounds
    assert len(rounds) >= 3
    times = [r.time for r in rounds]
    assert times == sorted(times)
    undelivered = [r.undelivered_ratio_old for r in rounds]
    delivered = [r.delivered_ratio_new for r in rounds]
    # undelivered ratio must fall to 0, delivered ratio must rise to 1
    assert undelivered[-1] == pytest.approx(0.0, abs=1e-9)
    assert delivered[-1] == pytest.approx(1.0, abs=1e-9)
    assert min(delivered) >= 0.0 and max(undelivered) <= 1.0 + 1e-9


def test_dynamic_session_with_churn_completes():
    config = make_session_config(
        40,
        seed=11,
        dynamic=True,
        max_time=90.0,
        old_stream_segments=400,
    )
    assert config.churn.enabled
    session = SwitchSession(config)
    result = session.run()
    # churn happened and the run still terminates with sensible metrics
    assert session.churn.total_leaves > 0
    assert session.churn.total_joins > 0
    assert result.metrics.n_peers > 0
    assert result.metrics.avg_prepare_new > 0
    # joiners are not tracked
    assert all(p.q0 == 0 for p in session.peers.values() if not p.tracked)


def test_simulated_warmup_reaches_steady_state():
    config = make_session_config(
        30,
        seed=5,
        warmup="simulated",
        warmup_duration=20.0,
        max_time=90.0,
        lookahead=120,
    )
    session = SwitchSession(config)
    result = session.run()
    assert result.switch_plan.id_end == int(20.0 * config.play_rate) - 1
    assert result.metrics.unfinished == 0
    assert result.metrics.avg_prepare_new > 0


def test_fair_share_estimator_still_completes(tiny_config):
    config = dataclasses.replace(tiny_config, supplier_rate_estimate="fair_share")
    result = run_session(config)
    assert result.metrics.unfinished == 0


def test_overhead_series_is_nondecreasing_in_time(tiny_config):
    result = run_session(tiny_config)
    times = [t for t, _ in result.overhead_series]
    assert times == sorted(times)
    assert all(ratio > 0 for _, ratio in result.overhead_series[1:])
