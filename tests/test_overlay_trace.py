"""Tests for the clip2/DSS-style trace format."""

import pytest

from repro.overlay.trace import (
    TraceNode,
    TraceRecordError,
    iter_trace,
    parse_trace,
    parse_trace_lines,
    write_trace,
)


def _sample_nodes():
    return [
        TraceNode(node_id=0, ip="10.0.0.0", host="a", port=6346, ping_ms=30.0,
                  speed_kbps=768.0, neighbours=(1, 2)),
        TraceNode(node_id=1, ip="10.0.0.1", host="b", port=6346, ping_ms=120.5,
                  speed_kbps=56.0, neighbours=(0,)),
        TraceNode(node_id=2, ip="10.0.0.2", host="", port=6347, ping_ms=45.0,
                  speed_kbps=1500.0, neighbours=()),
    ]


def test_roundtrip_through_file(tmp_path):
    path = tmp_path / "overlay.trace"
    nodes = _sample_nodes()
    write_trace(nodes, path, header="test trace")
    parsed = parse_trace(path)
    assert parsed == nodes


def test_iter_trace_matches_parse(tmp_path):
    path = tmp_path / "overlay.trace"
    nodes = _sample_nodes()
    write_trace(nodes, path)
    assert list(iter_trace(path)) == parse_trace(path)


def test_comments_and_blank_lines_ignored():
    lines = [
        "# a comment",
        "",
        "0|10.0.0.0|h|6346|30|768|1",
        "   ",
        "1|10.0.0.1|h|6346|40|768|0",
    ]
    nodes = parse_trace_lines(lines)
    assert [n.node_id for n in nodes] == [0, 1]
    assert nodes[0].neighbours == (1,)


def test_wrong_field_count_raises():
    with pytest.raises(TraceRecordError, match="7 '\\|'-separated fields"):
        parse_trace_lines(["0|10.0.0.0|h|6346|30|768"])


def test_malformed_numbers_raise():
    with pytest.raises(TraceRecordError):
        parse_trace_lines(["zero|10.0.0.0|h|6346|30|768|"])
    with pytest.raises(TraceRecordError):
        parse_trace_lines(["0|10.0.0.0|h|6346|thirty|768|"])


def test_negative_ping_or_speed_rejected():
    with pytest.raises(TraceRecordError):
        parse_trace_lines(["0|10.0.0.0|h|6346|-3|768|"])
    with pytest.raises(TraceRecordError):
        parse_trace_lines(["0|10.0.0.0|h|6346|3|-768|"])


def test_duplicate_node_ids_rejected():
    lines = ["0|10.0.0.0|h|6346|30|768|", "0|10.0.0.1|h|6346|30|768|"]
    with pytest.raises(TraceRecordError, match="duplicate"):
        parse_trace_lines(lines)


def test_malformed_neighbour_list_rejected():
    with pytest.raises(TraceRecordError):
        parse_trace_lines(["0|10.0.0.0|h|6346|30|768|1,x"])


def test_empty_neighbour_list_allowed():
    nodes = parse_trace_lines(["5|10.0.0.5|h|6346|30|768|"])
    assert nodes[0].neighbours == ()
