"""Unit tests for the per-region metrics module."""

import pytest

from repro.metrics.collectors import PeerOutcome
from repro.metrics.net import (
    NO_REGION,
    fabric_stats_rows,
    per_region_switch_stats,
    region_comparison_rows,
)


def outcome(node_id, switch_time, region=""):
    return PeerOutcome(
        node_id=node_id,
        q0=10,
        finish_old_time=switch_time,
        prepared_new_time=switch_time,
        switch_complete_time=switch_time,
        region=region,
    )


class TestPerRegionSwitchStats:
    def test_groups_by_region_sorted(self):
        outcomes = [
            outcome(1, 10.0, "west"),
            outcome(2, 20.0, "east"),
            outcome(3, 30.0, "east"),
        ]
        stats = per_region_switch_stats(outcomes, horizon=100.0)
        assert [s.region for s in stats] == ["east", "west"]
        east = stats[0]
        assert east.peers == 2
        assert east.mean == pytest.approx(25.0)
        assert east.p50 == pytest.approx(25.0)

    def test_unfinished_contributes_horizon(self):
        outcomes = [outcome(1, 10.0, "a"), outcome(2, None, "a")]
        (stats,) = per_region_switch_stats(outcomes, horizon=60.0)
        assert stats.unfinished == 1
        assert stats.mean == pytest.approx(35.0)  # (10 + 60) / 2

    def test_empty_region_label_buckets_under_dash(self):
        (stats,) = per_region_switch_stats([outcome(1, 5.0)], horizon=60.0)
        assert stats.region == NO_REGION

    def test_empty_outcomes(self):
        assert per_region_switch_stats([], horizon=60.0) == ()


class TestRegionComparisonRows:
    def test_paired_rows_and_reduction(self):
        normal = [outcome(1, 20.0, "a"), outcome(2, 40.0, "b")]
        fast = [outcome(1, 10.0, "a"), outcome(2, 30.0, "b")]
        rows = region_comparison_rows(normal, fast, horizon=60.0)
        assert [row["region"] for row in rows] == ["a", "b"]
        assert rows[0]["reduction"] == pytest.approx(0.5)
        assert rows[1]["normal_switch_time"] == pytest.approx(40.0)
        assert rows[1]["fast_switch_time"] == pytest.approx(30.0)

    def test_region_present_in_only_one_run(self):
        rows = region_comparison_rows(
            [outcome(1, 20.0, "a")], [outcome(2, 10.0, "b")], horizon=60.0
        )
        assert {row["region"] for row in rows} == {"a", "b"}


def test_fabric_stats_rows_round_and_prefix():
    rows = fabric_stats_rows({"messages": 10.0, "drop_ratio": 0.123456789})
    assert rows == [
        {"metric": "net drop_ratio", "value": 0.12346},
        {"metric": "net messages", "value": 10.0},
    ]
