"""Tests for workload compilation into per-period directives."""

from repro.streaming.session import PeriodDirective
from repro.workloads.schedule import compile_workload
from repro.workloads.spec import Phase, WorkloadSpec


def _spec(phases, tau=1.0, **kwargs):
    defaults = dict(name="t", description="", n_nodes=50, phases=phases, tau=tau)
    defaults.update(kwargs)
    return WorkloadSpec(**defaults)


def test_each_switch_phase_opens_a_segment():
    schedule = compile_workload(
        _spec((
            Phase("a", 10.0, switch=True),
            Phase("b", 5.0),
            Phase("c", 10.0, switch=True),
        ))
    )
    assert schedule.n_switches == 2
    assert [s.switch_phase for s in schedule.segments] == ["a", "c"]
    assert [s.n_periods for s in schedule.segments] == [15, 10]
    assert schedule.total_periods == 25


def test_durations_round_to_whole_periods():
    schedule = compile_workload(
        _spec((Phase("a", 10.0, switch=True), Phase("b", 3.0)), tau=2.0)
    )
    # 10s / 2s = 5 periods; 3s / 2s rounds to 2 periods
    assert schedule.segments[0].n_periods == 7
    windows = schedule.segments[0].windows
    assert (windows[0].first_period, windows[0].last_period) == (1, 5)
    assert (windows[1].first_period, windows[1].last_period) == (6, 7)
    assert windows[1].start == 10.0 and windows[1].end == 14.0


def test_default_phases_emit_no_directives():
    schedule = compile_workload(
        _spec((Phase("a", 10.0, switch=True), Phase("b", 5.0)))
    )
    assert schedule.segments[0].directives == ()


def test_override_phases_emit_directives_for_each_period():
    schedule = compile_workload(
        _spec((
            Phase("a", 10.0, switch=True),
            Phase("b", 5.0, leave_fraction=0.2, bandwidth_scale=0.5),
        ))
    )
    directives = schedule.segments[0].directive_map()
    assert sorted(directives) == [11, 12, 13, 14, 15]
    for directive in directives.values():
        assert isinstance(directive, PeriodDirective)
        assert directive.leave_fraction == 0.2
        assert directive.bandwidth_scale == 0.5
        assert directive.phase == "b"


def test_correlated_failure_fires_only_in_first_period_of_phase():
    schedule = compile_workload(
        _spec((
            Phase("a", 10.0, switch=True),
            Phase("fail", 5.0, fail_fraction=0.2),
        ))
    )
    directives = schedule.segments[0].directive_map()
    assert sorted(directives) == [11]  # later periods are default environment
    assert directives[11].fail_fraction == 0.2


def test_switch_phase_can_carry_environment_overrides():
    schedule = compile_workload(
        _spec((Phase("a", 5.0, switch=True, bandwidth_scale=0.8),))
    )
    directives = schedule.segments[0].directive_map()
    assert sorted(directives) == [1, 2, 3, 4, 5]
    assert all(d.bandwidth_scale == 0.8 for d in directives.values())


def test_compilation_is_deterministic():
    spec = _spec((
        Phase("a", 10.0, switch=True),
        Phase("b", 5.0, join_fraction=0.3),
        Phase("c", 10.0, switch=True, fail_fraction=0.1),
    ))
    assert compile_workload(spec) == compile_workload(spec)


def test_qoe_windows_match_phase_windows():
    schedule = compile_workload(
        _spec((Phase("a", 10.0, switch=True), Phase("b", 5.0)))
    )
    assert schedule.segments[0].qoe_windows() == [("a", 0.0, 10.0), ("b", 10.0, 15.0)]
