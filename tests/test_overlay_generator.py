"""Tests for the synthetic Gnutella-like trace generator."""

import pytest

from repro.overlay.generator import (
    PAPER_TRACE_SIZES,
    SyntheticTraceGenerator,
    TraceSpec,
    generate_paper_trace_suite,
    generate_trace,
)
from repro.overlay.topology import build_overlay_from_trace


def test_generate_trace_has_requested_size_and_unique_ids():
    nodes = generate_trace(200, seed=1)
    assert len(nodes) == 200
    assert len({n.node_id for n in nodes}) == 200
    assert len({n.ip for n in nodes}) == 200


def test_generation_is_deterministic_per_seed():
    a = generate_trace(100, seed=5)
    b = generate_trace(100, seed=5)
    c = generate_trace(100, seed=6)
    assert a == b
    assert a != c


def test_trace_overlay_is_connected_and_sparse():
    nodes = generate_trace(300, seed=2, mean_degree=2.0)
    overlay = build_overlay_from_trace(nodes)
    assert overlay.is_connected()
    # sparse, Gnutella-crawl-like: well below the streaming degree M=5
    assert overlay.average_degree() < 5.0
    assert overlay.average_degree() >= 1.5


def test_ping_times_within_clip_range():
    nodes = generate_trace(500, seed=3)
    pings = [n.ping_ms for n in nodes]
    assert min(pings) >= 5.0
    assert max(pings) <= 2000.0


def test_speeds_come_from_known_classes():
    nodes = generate_trace(300, seed=4)
    speeds = {n.speed_kbps for n in nodes}
    assert speeds <= {56.0, 128.0, 768.0, 1500.0, 10000.0, 45000.0}
    # the mix should not be degenerate
    assert len(speeds) >= 3


def test_spec_validation():
    with pytest.raises(ValueError):
        TraceSpec(n_nodes=1)
    with pytest.raises(ValueError):
        TraceSpec(n_nodes=10, hub_fraction=1.5)
    with pytest.raises(ValueError):
        TraceSpec(n_nodes=10, mean_degree=0.5)
    with pytest.raises(ValueError):
        TraceSpec(n_nodes=10, ping_median_ms=0.0)


def test_generator_respects_mean_degree_knob():
    sparse = build_overlay_from_trace(generate_trace(300, seed=7, mean_degree=1.5))
    denser = build_overlay_from_trace(generate_trace(300, seed=7, mean_degree=3.0))
    assert denser.average_degree() > sparse.average_degree()


def test_paper_trace_suite_covers_thirty_traces():
    suite = generate_paper_trace_suite(seed=0, sizes=(50, 80), traces_per_size=3)
    assert set(suite) == {50, 80}
    assert all(len(traces) == 3 for traces in suite.values())
    assert len(suite[50][0]) == 50


def test_paper_trace_sizes_match_evaluation():
    assert PAPER_TRACE_SIZES == (100, 500, 1000, 2000, 4000, 8000)


def test_generator_class_reuse_is_stable():
    spec = TraceSpec(n_nodes=60, seed=9)
    first = SyntheticTraceGenerator(spec).generate()
    second = SyntheticTraceGenerator(spec).generate()
    assert first == second
