"""Tests for the multi-channel universe: spec, planning, execution, runner."""

from dataclasses import replace

import numpy as np
import pytest

from repro.channels.runner import (
    UniverseRunner,
    rep_from_dict,
    rep_to_dict,
    run_universe,
    universe_fingerprint,
)
from repro.channels.universe import (
    UniverseSession,
    UniverseSpec,
    plan_universe,
    run_universe_channel,
    run_universe_rep,
)
from repro.experiments.store import MissingResultError, ResultStore
from repro.sim.rng import RandomStreams

#: A deliberately tiny universe so the suite stays fast.
TINY = UniverseSpec(
    name="tiny-test",
    description="unit-test universe",
    n_channels=4,
    n_viewers=48,
    zipf_exponent=1.0,
    min_audience=8,
    surfer_fraction=0.4,
    surfer_zap_rate=0.15,
    loyal_zap_rate=0.01,
    duration=16.0,
)


class TestUniverseSpec:
    def test_dict_round_trip(self):
        spec = TINY
        assert UniverseSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_with_overrides(self):
        spec = UniverseSpec(
            name="o", n_channels=3, n_viewers=30, duration=10.0,
            session_overrides=(("min_degree", 4), ("play_rate", 8.0)),
        )
        assert spec.min_degree == 4
        assert UniverseSpec.from_dict(spec.to_dict()) == spec

    def test_reserved_overrides_rejected(self):
        for key in ("seed", "n_nodes", "max_time", "churn", "warmup", "tau"):
            with pytest.raises(ValueError):
                UniverseSpec(name="bad", session_overrides=((key, 1),))

    def test_non_primitive_override_rejected(self):
        with pytest.raises(ValueError):
            UniverseSpec(name="bad", session_overrides=(("lag_per_hop", [1, 2]),))

    def test_population_must_cover_the_lineup(self):
        with pytest.raises(ValueError):
            UniverseSpec(name="bad", n_channels=10, n_viewers=40)

    def test_min_audience_must_support_the_mesh(self):
        with pytest.raises(ValueError):
            UniverseSpec(name="bad", min_audience=3)

    def test_fractions_validated(self):
        for attr in ("surfer_fraction", "surfer_zap_rate", "loyal_zap_rate"):
            with pytest.raises(ValueError):
                UniverseSpec(name="bad", **{attr: 1.2})

    def test_horizon_rounds_to_whole_periods(self):
        spec = UniverseSpec(name="h", n_channels=2, n_viewers=20, duration=10.4)
        assert spec.n_periods == 10
        assert spec.horizon == 10.0

    def test_scaled_to(self):
        spec = TINY.scaled_to(n_channels=3, n_viewers=60)
        assert spec.n_channels == 3 and spec.n_viewers == 60
        assert spec.name == TINY.name


class TestPlanning:
    def test_plan_is_deterministic(self):
        a = plan_universe(TINY, 3)
        b = plan_universe(TINY, 3)
        assert a.lineup == b.lineup
        assert a.channel_seeds == b.channel_seeds
        assert a.zap_plan == b.zap_plan

    def test_channel_seeds_are_distinct(self):
        plan = plan_universe(TINY, 0)
        assert len(set(plan.channel_seeds)) == TINY.n_channels

    def test_different_seeds_make_different_plans(self):
        assert plan_universe(TINY, 0).zap_plan != plan_universe(TINY, 1).zap_plan

    def test_channel_event_streams_are_uncorrelated(self):
        # satellite guarantee: per-channel RNG families spawned via numpy
        # seed sequences give uncorrelated draws between channels.
        plan = plan_universe(TINY, 0)
        draws = [
            RandomStreams(seed).get("round-order").random(4000)
            for seed in plan.channel_seeds[:2]
        ]
        corr = float(np.corrcoef(draws[0], draws[1])[0, 1])
        assert abs(corr) < 0.05
        assert not np.array_equal(draws[0], draws[1])


class TestExecution:
    def test_serial_rep_matches_isolated_channels(self):
        rep = run_universe_rep(TINY, 2)
        for channel in range(TINY.n_channels):
            normal, fast = run_universe_channel(TINY, 2, channel)
            assert normal == rep.normal[channel]
            assert fast == rep.fast[channel]

    def test_shared_engine_runs_every_mesh(self):
        session = UniverseSession(TINY, 0)
        assert len(session.sessions) == 2 * TINY.n_channels
        rep = session.run()
        assert len(session.directory.services) == 2 * TINY.n_channels
        assert rep.n_channels == TINY.n_channels
        assert rep.n_viewers == TINY.n_viewers
        assert all(o.algorithm == "normal" for o in rep.normal)
        assert all(o.algorithm == "fast" for o in rep.fast)
        assert sum(o.audience for o in rep.fast) == TINY.n_viewers

    def test_outcomes_are_paired_and_measured(self):
        rep = run_universe_rep(TINY, 0)
        for normal, fast in zip(rep.normal, rep.fast):
            assert normal.channel == fast.channel
            assert normal.n_peers > 0
            assert fast.mean_zap_time > 0
            assert 0.0 <= fast.continuity <= 1.0

    def test_rep_dict_round_trip(self):
        rep = run_universe_rep(TINY, 1)
        # The dict forms cover the raw outcome table only: the streaming
        # aggregate block persists as a store-document sibling, not inside
        # the rep payload, so the round trip reconstructs it as None.
        assert rep.aggregates is not None
        restored = rep_from_dict(rep_to_dict(rep))
        assert restored.aggregates is None
        assert restored == replace(rep, aggregates=None)


class TestRunnerDeterminism:
    def test_workers_bit_identical_to_serial(self):
        serial = run_universe(TINY, seed=0, repetitions=2)
        parallel = run_universe(TINY, seed=0, repetitions=2, workers=2)
        assert serial.reps == parallel.reps
        assert serial.decile_rows() == parallel.decile_rows()

    def test_fast_beats_normal_on_every_decile(self):
        result = run_universe(TINY, seed=0, repetitions=2)
        rows = result.decile_rows()
        assert rows, "expected populated deciles"
        for row in rows:
            assert row["fast_zap_time"] < row["normal_zap_time"], row
        assert result.mean_reduction > 0

    def test_channel_rows_cover_the_lineup(self):
        result = run_universe(TINY, seed=0)
        rows = result.channel_rows()
        assert len(rows) == TINY.n_channels
        assert [row["decile"] for row in rows] == sorted(row["decile"] for row in rows)


class TestRunnerStore:
    def test_store_replays_bit_identically(self, tmp_path):
        store = ResultStore(tmp_path)
        first = run_universe(TINY, seed=0, repetitions=2, store=store)
        assert first.simulated == 2 and first.replayed == 0
        second = run_universe(TINY, seed=0, repetitions=2, store=store)
        assert second.simulated == 0 and second.replayed == 2
        assert first.reps == second.reps

    def test_replay_only_store_refuses_to_simulate(self, tmp_path):
        store = ResultStore(tmp_path, replay_only=True)
        with pytest.raises(MissingResultError):
            run_universe(TINY, seed=0, store=store)

    def test_fingerprint_rotates_with_spec_and_seed(self):
        base = universe_fingerprint(TINY, 0)
        assert base.startswith("universe-")
        assert universe_fingerprint(TINY, 1) != base
        changed = UniverseSpec.from_dict({**TINY.to_dict(), "surfer_zap_rate": 0.2})
        assert universe_fingerprint(changed, 0) != base
        assert universe_fingerprint(TINY, 0, version="other") != base

    def test_runner_validates_arguments(self):
        with pytest.raises(ValueError):
            UniverseRunner(workers=0)
        with pytest.raises(ValueError):
            UniverseRunner().run(TINY, repetitions=0)
