"""Tests for bandwidth sampling and the outbound capacity ledger."""

import numpy as np
import pytest

from repro.streaming.bandwidth import BandwidthProfile, OutboundLedger, sample_rates


def test_bandwidth_profile_rejects_negative_rates():
    with pytest.raises(ValueError):
        BandwidthProfile(inbound=-1.0, outbound=1.0)
    with pytest.raises(ValueError):
        BandwidthProfile(inbound=1.0, outbound=-1.0)
    profile = BandwidthProfile(inbound=15.0, outbound=12.0)
    assert profile.inbound == 15.0


def test_sample_rates_respects_bounds_and_mean():
    rng = np.random.default_rng(0)
    rates = sample_rates(20_000, rng, low=10.0, high=33.0, mean=15.0)
    assert rates.min() >= 10.0
    assert rates.max() <= 33.0
    # the paper's skewed distribution: mean ~15 (within a few percent)
    assert abs(rates.mean() - 15.0) < 0.6


def test_sample_rates_validates_arguments():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        sample_rates(-1, rng)
    with pytest.raises(ValueError):
        sample_rates(10, rng, low=30.0, high=10.0)
    with pytest.raises(ValueError):
        sample_rates(10, rng, low=10.0, high=33.0, mean=50.0)
    assert sample_rates(0, rng).shape == (0,)


def test_ledger_consumes_budget_and_rejects_when_exhausted():
    ledger = OutboundLedger({1: 2.0, 2: 5.0}, period=1.0)
    assert ledger.consume(1)
    assert ledger.consume(1)
    assert not ledger.consume(1)  # budget of 2 exhausted
    assert ledger.remaining(2) == pytest.approx(5.0)
    assert ledger.served_total == 2
    assert ledger.rejected_total == 1


def test_ledger_unknown_node_cannot_serve():
    ledger = OutboundLedger({1: 2.0}, period=1.0)
    assert not ledger.can_serve(99)
    assert not ledger.consume(99)


def test_ledger_reset_refills_budget():
    ledger = OutboundLedger({1: 3.0}, period=1.0)
    for _ in range(3):
        assert ledger.consume(1)
    assert not ledger.consume(1)
    ledger.end_period()
    ledger.reset_period()
    assert ledger.consume(1)


def test_ledger_fractional_credit_carries_over():
    ledger = OutboundLedger({1: 1.5}, period=1.0)
    assert ledger.consume(1)
    assert not ledger.consume(1)  # 0.5 left, below one segment
    ledger.end_period()
    ledger.reset_period()
    # 1.5 + 0.5 carried credit = 2 segments available this period
    assert ledger.consume(1)
    assert ledger.consume(1)
    assert not ledger.consume(1)


def test_ledger_credit_capped_at_one_segment():
    ledger = OutboundLedger({1: 5.0}, period=1.0)
    ledger.end_period()  # nothing consumed; credit capped at 1.0
    ledger.reset_period()
    served = 0
    while ledger.consume(1):
        served += 1
    assert served == 6  # 5 + at most 1 carried segment


def test_ledger_add_and_remove_nodes():
    ledger = OutboundLedger({1: 2.0}, period=1.0)
    ledger.add_node(5, 3.0)
    assert ledger.consume(5)
    ledger.remove_node(5)
    assert not ledger.consume(5)
    ledger.remove_node(42)  # unknown: no-op


def test_ledger_utilisation():
    ledger = OutboundLedger({1: 4.0, 2: 4.0}, period=1.0)
    assert ledger.utilisation() == pytest.approx(0.0)
    ledger.consume(1)
    ledger.consume(1)
    assert 0.0 < ledger.utilisation() < 1.0
    assert ledger.utilisation([1]) == pytest.approx(0.5)


def test_ledger_requires_positive_period():
    with pytest.raises(ValueError):
        OutboundLedger({1: 1.0}, period=0.0)
