"""Property-based tests for the FIFO buffer (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming.buffer import SegmentBuffer

ids = st.lists(st.integers(min_value=0, max_value=200), min_size=0, max_size=120)
capacities = st.integers(min_value=1, max_value=40)


@settings(max_examples=200, deadline=None)
@given(inserts=ids, capacity=capacities)
def test_size_never_exceeds_capacity(inserts, capacity):
    buffer = SegmentBuffer(capacity=capacity)
    buffer.insert_many(inserts)
    assert len(buffer) <= capacity
    assert len(buffer) == len(buffer.as_set())


@settings(max_examples=200, deadline=None)
@given(inserts=ids, capacity=capacities)
def test_buffer_matches_reference_fifo_model(inserts, capacity):
    """The buffer behaves exactly like a simple list-based FIFO model.

    The model: an insert of an id not currently held appends it; when the
    size exceeds the capacity the oldest held id is dropped.  Re-inserting a
    currently-held id is a no-op, but an id that was evicted earlier can be
    inserted again.
    """
    buffer = SegmentBuffer(capacity=capacity)
    model: list[int] = []
    for seg in inserts:
        buffer.insert(seg)
        if seg not in model:
            model.append(seg)
            if len(model) > capacity:
                model.pop(0)
    assert list(buffer) == model
    assert buffer.as_set() == frozenset(model)


@settings(max_examples=200, deadline=None)
@given(inserts=ids, capacity=capacities)
def test_positions_are_a_permutation_of_1_to_n(inserts, capacity):
    buffer = SegmentBuffer(capacity=capacity)
    buffer.insert_many(inserts)
    positions = sorted(buffer.position_from_tail(seg) for seg in buffer.as_set())
    assert positions == list(range(1, len(buffer) + 1))


@settings(max_examples=200, deadline=None)
@given(inserts=ids, capacity=capacities)
def test_newest_has_position_one_and_oldest_has_position_len(inserts, capacity):
    buffer = SegmentBuffer(capacity=capacity)
    buffer.insert_many(inserts)
    if len(buffer) == 0:
        return
    assert buffer.position_from_tail(buffer.newest()) == 1
    assert buffer.position_from_tail(buffer.oldest()) == len(buffer)


@settings(max_examples=200, deadline=None)
@given(inserts=ids, capacity=capacities,
       discards=st.lists(st.integers(min_value=0, max_value=200), max_size=20))
def test_positions_remain_consistent_after_discards(inserts, capacity, discards):
    buffer = SegmentBuffer(capacity=capacity)
    buffer.insert_many(inserts)
    for seg in discards:
        buffer.discard(seg)
    positions = sorted(buffer.position_from_tail(seg) for seg in buffer.as_set())
    assert positions == list(range(1, len(buffer) + 1))


@settings(max_examples=150, deadline=None)
@given(inserts=ids, capacity=capacities, lo=st.integers(0, 200), hi=st.integers(0, 200))
def test_range_queries_partition_the_window(inserts, capacity, lo, hi):
    buffer = SegmentBuffer(capacity=capacity)
    buffer.insert_many(inserts)
    held = buffer.ids_in_range(lo, hi)
    missing = buffer.missing_in_range(lo, hi)
    window = list(range(lo, hi + 1))
    assert sorted(held + missing) == window
    assert all(seg in buffer for seg in held)
    assert all(seg not in buffer for seg in missing)
