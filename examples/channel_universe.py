#!/usr/bin/env python
"""Channel universe: the paper's switch measured across a Zipf lineup.

Builds a small multi-channel universe -- a lineup of channels under
Zipf-skewed popularity shared by a population of surfing and loyal
viewers -- and runs every channel's paired fast-vs-normal source switch
on one shared simulation engine.  Prints the per-channel zap-time table
and the per-popularity-decile comparison.

Usage::

    python examples/channel_universe.py [--channels 8] [--viewers 200] [--seed 0]
"""

from __future__ import annotations

import argparse

from repro import get_universe, run_universe
from repro.metrics.report import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--channels", type=int, default=8,
                        help="lineup size (popularity ranks)")
    parser.add_argument("--viewers", type=int, default=200,
                        help="total viewer population across the lineup")
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (bit-identical to serial)")
    args = parser.parse_args()

    spec = get_universe("lineup-zipf").scaled_to(
        n_channels=args.channels, n_viewers=args.viewers
    )
    print(f"universe: {spec.name} scaled to {spec.n_channels} channels / "
          f"{spec.n_viewers} viewers (seed {args.seed})")
    print(f"viewer mix: {spec.surfer_fraction:.0%} surfers zapping at "
          f"{spec.surfer_zap_rate:.0%}/period, loyal at "
          f"{spec.loyal_zap_rate:.0%}/period\n")

    result = run_universe(spec, seed=args.seed, workers=args.workers)

    print("per-channel zap times (every channel runs the paper's paired switch):")
    print(format_table(result.channel_rows()))
    print()
    print("per-popularity-decile zap times (decile 0 = most popular tenth):")
    print(format_table(result.decile_rows()))
    print(f"\n{result.n_zaps} scripted zaps; "
          f"mean zap-time reduction: {result.mean_reduction:.1%}")


if __name__ == "__main__":
    main()
