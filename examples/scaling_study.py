#!/usr/bin/env python
"""Scaling study: switch-time reduction vs overlay size.

Reproduces the paper's Figure 7 trend (the reduction ratio of the fast
algorithm grows with the network size) on a configurable set of overlay
sizes.  With ``--paper-scale`` it runs the paper's full 100-8000-node sweep
(slow); the default sizes finish in a few minutes.

Usage::

    python examples/scaling_study.py [--sizes 100 200 400] [--repetitions 2]
    python examples/scaling_study.py --paper-scale     # hours, paper sizes
"""

from __future__ import annotations

import argparse

from repro.experiments.config import BENCH_SWEEP_SIZES, PAPER_SWEEP_SIZES
from repro.experiments.sweeps import run_size_sweep
from repro.metrics.report import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sizes", type=int, nargs="+", default=None)
    parser.add_argument("--repetitions", type=int, default=1,
                        help="independent seeds per size (use >=3 for smooth trends)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--dynamic", action="store_true", help="enable 5%%/period churn")
    parser.add_argument("--paper-scale", action="store_true",
                        help="use the paper's 100-8000 node sweep")
    args = parser.parse_args()

    if args.sizes is not None:
        sizes = args.sizes
    elif args.paper_scale:
        sizes = list(PAPER_SWEEP_SIZES)
    else:
        sizes = list(BENCH_SWEEP_SIZES) + [800]

    environment = "dynamic (5% churn)" if args.dynamic else "static"
    print(f"Sweeping overlay sizes {sizes} in a {environment} environment, "
          f"{args.repetitions} repetition(s) per size ...")
    sweep = run_size_sweep(sizes, dynamic=args.dynamic, seed=args.seed,
                           repetitions=args.repetitions)

    rows = [
        {
            "n_nodes": point.n_nodes,
            "normal switch time (s)": round(point.normal_switch_time, 2),
            "fast switch time (s)": round(point.fast_switch_time, 2),
            "reduction": f"{point.reduction:.1%}",
            "normal overhead": round(point.normal_overhead, 4),
            "fast overhead": round(point.fast_overhead, 4),
        }
        for point in sweep.points
    ]
    print(format_table(rows))
    print("\nPaper reference: reduction between 20% and 30%, increasing with the "
          "network size; overhead slightly above 1% for both algorithms.")


if __name__ == "__main__":
    main()
