#!/usr/bin/env python
"""Speaker hand-over in a P2P video conference.

The paper motivates serial multi-source streaming with video conferencing:
every member can become the source, but only one speaks at a time.  This
example simulates a speaker change in a 300-participant conference and
shows the per-round progress of the switch (the data behind the paper's
Figure 5) as a small ASCII chart, for both algorithms.

Usage::

    python examples/video_conference.py [--algorithm fast|normal|both]
"""

from __future__ import annotations

import argparse

from repro.experiments.scenarios import SCENARIOS
from repro.experiments.runner import run_single
from repro.metrics.report import format_table


def _ascii_series(series, width: int = 50) -> str:
    """Render a (time, ratio in [0,1]) series as one bar line per sample."""
    lines = []
    for time, value in series:
        bar = "#" * int(round(max(0.0, min(1.0, value)) * width))
        lines.append(f"  t={time:5.1f}s |{bar:<{width}}| {value:5.2f}")
    return "\n".join(lines)


def run(algorithm: str) -> None:
    scenario = SCENARIOS["video-conference"]
    config = scenario.config(algorithm=algorithm, seed=7)
    print(f"\n=== {scenario.name} with the {algorithm} switch algorithm ===")
    print(scenario.description)
    result = run_single(config)
    metrics = result.metrics

    print(f"\nDelivered ratio of the new speaker's stream over time "
          f"({algorithm} algorithm):")
    series = metrics.series("delivered_ratio_new")
    print(_ascii_series(series[:: max(1, len(series) // 20)]))

    print()
    print(format_table([
        {"metric": "participants tracked", "value": metrics.n_peers},
        {"metric": "avg finish of old speaker (s)", "value": round(metrics.avg_finish_old, 2)},
        {"metric": "avg switch time (s)", "value": round(metrics.avg_switch_time, 2)},
        {"metric": "slowest participant ready (s)", "value": round(metrics.last_prepare_new, 2)},
        {"metric": "playback stalls (total)", "value": sum(o.stalls for o in metrics.outcomes)},
        {"metric": "communication overhead", "value": round(result.overhead_ratio, 4)},
    ], ["metric", "value"]))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--algorithm", choices=["fast", "normal", "both"], default="both")
    args = parser.parse_args()
    algorithms = ["normal", "fast"] if args.algorithm == "both" else [args.algorithm]
    for algorithm in algorithms:
        run(algorithm)


if __name__ == "__main__":
    main()
