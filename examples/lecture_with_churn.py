#!/usr/bin/env python
"""Lecturer hand-over in a distance-education overlay with churn.

The paper's second motivating application is distance education: a large
audience, lecturers handing over to each other, and students joining and
leaving all the time.  This example runs the paper's *dynamic environment*
(5% of the peers leave and 5% join every scheduling period) and compares
the two switch algorithms under that churn, reproducing the qualitative
message of Figures 9-11: the fast algorithm's advantage survives churn.

Usage::

    python examples/lecture_with_churn.py [--n-nodes 800] [--seed 3]
"""

from __future__ import annotations

import argparse

from repro.experiments.config import make_session_config
from repro.experiments.runner import run_pair
from repro.metrics.report import format_table, reduction_ratio
from repro.streaming.session import SwitchSession


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n-nodes", type=int, default=800)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    config = make_session_config(args.n_nodes, seed=args.seed, dynamic=True, max_time=120.0)
    print(f"Simulating a lecturer hand-over among {args.n_nodes} students with "
          f"5%/period churn (seed {args.seed}) ...")

    # Run the two algorithms on identical churn schedules.
    pair = run_pair(config)

    rows = []
    for result in (pair.normal, pair.fast):
        metrics = result.metrics
        rows.append({
            "algorithm": metrics.algorithm,
            "students measured": metrics.n_peers,
            "avg finish old lecturer (s)": round(metrics.avg_finish_old, 2),
            "avg switch time (s)": round(metrics.avg_switch_time, 2),
            "not ready at horizon": metrics.unfinished,
            "overhead": round(result.overhead_ratio, 4),
        })
    print(format_table(rows))

    reduction = reduction_ratio(
        pair.normal.metrics.avg_switch_time, pair.fast.metrics.avg_switch_time
    )
    print(f"\nSwitch-time reduction under churn: {reduction:.1%}")

    # Show how much membership actually changed during the fast run.
    session = SwitchSession(config.with_algorithm("fast"))
    result = session.run()
    print(f"\nChurn realised in one run: {session.churn.total_leaves} departures, "
          f"{session.churn.total_joins} arrivals over {result.n_rounds} scheduling periods "
          f"({len(session.peers)} peers alive at the end).")


if __name__ == "__main__":
    main()
