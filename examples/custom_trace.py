#!/usr/bin/env python
"""Running the switch experiment on your own overlay trace.

The paper evaluates on Gnutella crawl traces (``dss.clip2.com``).  Those
traces are long gone, but if you have any overlay crawl you can convert it
into the clip2/DSS-style text format documented in
``repro.overlay.trace`` and run the same experiments on it.  This example:

1. generates a synthetic trace file (stand-in for a real crawl),
2. parses it back, builds the overlay and augments it to M=5 neighbours,
3. runs the paired switch experiment on that custom overlay.

Usage::

    python examples/custom_trace.py [--n-nodes 250] [--keep path/to/trace]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro.experiments.config import make_session_config
from repro.experiments.runner import PairedRunResult
from repro.metrics.report import format_table
from repro.overlay.augment import augment_to_min_degree
from repro.overlay.generator import generate_trace
from repro.overlay.topology import build_overlay_from_trace
from repro.overlay.trace import parse_trace, write_trace
from repro.streaming.session import SwitchSession


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n-nodes", type=int, default=250)
    parser.add_argument("--seed", type=int, default=5)
    parser.add_argument("--keep", type=str, default=None,
                        help="write the trace to this path instead of a temp file")
    args = parser.parse_args()

    # 1. write a crawl-style trace file
    records = generate_trace(args.n_nodes, seed=args.seed)
    if args.keep:
        trace_path = Path(args.keep)
    else:
        trace_path = Path(tempfile.gettempdir()) / f"repro-trace-{args.n_nodes}.trace"
    write_trace(records, trace_path, header=f"synthetic crawl, n={args.n_nodes}")
    print(f"Wrote {len(records)} crawl records to {trace_path}")

    # 2. load it back and prepare it for streaming (the paper's M=5 step)
    loaded = parse_trace(trace_path)
    overlay = build_overlay_from_trace(loaded)
    print(f"Parsed overlay: {len(overlay)} nodes, average crawled degree "
          f"{overlay.average_degree():.2f}")
    added = augment_to_min_degree(overlay, 5, np.random.default_rng(args.seed))
    print(f"Added {added} random edges so every node has at least 5 neighbours "
          f"(average degree now {overlay.average_degree():.2f})")

    # 3. run both algorithms on this custom overlay
    config = make_session_config(args.n_nodes, seed=args.seed, max_time=120.0)
    normal = SwitchSession(config.with_algorithm("normal"), overlay=overlay).run()
    fast = SwitchSession(config.with_algorithm("fast"), overlay=overlay).run()
    pair = PairedRunResult(normal=normal, fast=fast)

    print()
    print(format_table([pair.comparison(f"{args.n_nodes}-node custom trace").as_dict()]))
    print(f"\nSwitch-time reduction on this trace: {pair.switch_time_reduction:.1%}")


if __name__ == "__main__":
    main()
