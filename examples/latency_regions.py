"""Geography as an experiment axis: the paired switch across topologies.

Runs the paper's paired fast-vs-normal comparison over the ideal
(zero-latency) network and over two library topologies, prints the mean
switch time of each algorithm per topology, and breaks the
``transcontinental`` run down by region.

What to expect:

* latency and loss lengthen switch times for both algorithms -- lost
  segment responses waste supplier budget and stall playback, which hits
  the normal switch's long old-stream drain hardest;
* at this configuration the transcontinental fabric *widens* the
  fast-switch advantage, in absolute seconds and in reduction ratio
  (pinned by ``tests/test_net_session.py``);
* the fast algorithm wins in every region, including the ones a hundred
  milliseconds from the new source.

Run with::

    python examples/latency_regions.py
"""

from repro.experiments.config import make_session_config
from repro.experiments.runner import run_pair
from repro.metrics.net import region_comparison_rows
from repro.metrics.report import format_table


def main() -> None:
    rows = []
    pairs = {}
    for topology in ("", "metro", "transcontinental"):
        config = make_session_config(
            150, seed=1, max_time=90.0, topology=topology
        )
        pair = run_pair(config)
        pairs[topology] = pair
        rows.append(
            {
                "topology": topology or "ideal",
                "normal_switch_time": pair.normal.metrics.avg_switch_time,
                "fast_switch_time": pair.fast.metrics.avg_switch_time,
                "reduction": pair.switch_time_reduction,
                "net_drop_ratio": pair.fast.fabric_stats.get("drop_ratio", 0.0),
                "net_mean_delay_s": pair.fast.fabric_stats.get("mean_delay_s", 0.0),
            }
        )

    print("paired switch time by topology (150 peers, seed 1):")
    print(format_table(rows))

    pair = pairs["transcontinental"]
    print("\nper-region breakdown over 'transcontinental':")
    print(
        format_table(
            region_comparison_rows(
                pair.normal.metrics.outcomes,
                pair.fast.metrics.outcomes,
                horizon=pair.normal.metrics.horizon,
            )
        )
    )


if __name__ == "__main__":
    main()
