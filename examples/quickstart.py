#!/usr/bin/env python
"""Quickstart: one paired source-switch simulation.

Runs the paper's workload on a small (200-node) static overlay with both
the normal and the fast switch algorithm on identical random draws, then
prints the headline comparison: average finishing time of the old source,
average preparing (= switch) time of the new source, the switch-time
reduction and the communication overhead.

Usage::

    python examples/quickstart.py [--n-nodes 200] [--seed 1]
"""

from __future__ import annotations

import argparse

from repro import make_session_config
from repro.experiments.figures import figure2
from repro.experiments.runner import run_pair
from repro.metrics.report import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n-nodes", type=int, default=200,
                        help="overlay size including the two sources")
    parser.add_argument("--seed", type=int, default=1, help="random seed")
    args = parser.parse_args()

    print("Step 1 -- the paper's Figure 2 example (one scheduling period):")
    print(figure2().to_text())
    print()

    print(f"Step 2 -- full switch simulation on {args.n_nodes} nodes "
          f"(seed {args.seed}), both algorithms on identical overlays ...")
    config = make_session_config(args.n_nodes, seed=args.seed, max_time=120.0)
    pair = run_pair(config)

    rows = []
    for result in (pair.normal, pair.fast):
        metrics = result.metrics
        rows.append({
            "algorithm": metrics.algorithm,
            "avg finish S1 (s)": round(metrics.avg_finish_old, 2),
            "avg prepare S2 (s)": round(metrics.avg_prepare_new, 2),
            "avg switch time (s)": round(metrics.avg_switch_time, 2),
            "last node ready (s)": round(metrics.last_prepare_new, 2),
            "overhead": round(result.overhead_ratio, 4),
        })
    print(format_table(rows))
    print()
    print(f"Switch-time reduction of the fast algorithm: "
          f"{pair.switch_time_reduction:.1%}")
    print("(The paper reports 20-30% at 100-10000 nodes; at this reduced scale "
          "expect roughly 5-20%, growing with the overlay size.)")


if __name__ == "__main__":
    main()
