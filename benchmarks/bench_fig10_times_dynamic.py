"""Figure 10: average finishing/preparing times vs overlay size (dynamic)."""

from conftest import BENCH_SEED, RESULTS_STORE, SWEEP_SIZES, report_figure

from repro.experiments.figures import figure10


def test_fig10_times_dynamic(benchmark):
    result = benchmark.pedantic(
        lambda: figure10(sizes=SWEEP_SIZES, seed=BENCH_SEED, store=RESULTS_STORE),
        rounds=1,
        iterations=1,
    )
    report_figure(benchmark, result)

    slack = 2.0  # churn adds noise on top of the usual one-period slack
    for row in result.rows:
        assert row["normal_finish_S1"] > 0
        assert row["normal_finish_S1"] <= row["fast_finish_S1"] + slack
        assert row["fast_prepare_S2"] <= row["normal_prepare_S2"] + slack
