"""Simulator throughput: peer-rounds per second.

Not a paper figure; tracks the cost of the simulation substrate itself so
regressions in the hot path (buffer-map snapshots, priority computation,
greedy assignment, transfer resolution) are visible.  The calibration note
in DESIGN.md ("scaling peer counts is the slow part") is quantified here.
"""

from conftest import BENCH_SEED, report_rows

from repro.experiments.config import make_session_config
from repro.streaming.session import SwitchSession


import repro.core.vector  # noqa: F401  (imported up front: numpy warm-up is setup cost, not measured time)


def _run_once(n_nodes: int, engine: str = "oracle"):
    config = make_session_config(
        n_nodes, seed=BENCH_SEED, max_time=120.0, engine=engine
    )
    session = SwitchSession(config)
    result = session.run()
    return result


def _throughput_case(benchmark, engine: str):
    result = benchmark.pedantic(
        lambda: _run_once(100, engine=engine), rounds=1, iterations=1
    )
    peer_rounds = result.n_peers * result.n_rounds
    rate = peer_rounds / max(result.wallclock_seconds, 1e-9)
    report_rows(
        benchmark,
        f"Simulator throughput (100-node overlay, {engine} engine)",
        [{
            "engine": engine,
            "peers": result.n_peers,
            "rounds": result.n_rounds,
            "peer_rounds": peer_rounds,
            "peer_rounds_per_s": round(rate, 1),
            "wallclock_s": round(result.wallclock_seconds, 2),
        }],
    )
    assert result.metrics.unfinished == 0
    assert rate > 100  # sanity: at least a few hundred peer-rounds per second
    return result


def test_simulator_throughput_small_overlay(benchmark):
    _throughput_case(benchmark, "oracle")


def test_simulator_throughput_small_overlay_vector(benchmark):
    """Same workload on the array-native engine (must stay bit-identical;
    ``tests/test_vector_equivalence.py`` enforces that contract)."""
    _throughput_case(benchmark, "vector")


def test_telemetry_overhead_is_negligible(benchmark):
    """Pin the cost of the observability layer on the hot path.

    Runs the 100-node workload uninstrumented and again under an active
    telemetry session, and records the instrumented/uninstrumented
    wallclock ratio as a scalar ``extra_info`` --
    ``run_benchmarks.summarise`` keeps scalar extras, so the ratio lands
    in the ``BENCH_<sha>.json`` summaries where ``repro bench trend`` and
    ``run_benchmarks.py --check`` can gate it.  Both runs happen inside
    the timed callable so the benchmark's own mean stays comparable
    across commits.
    """
    from repro.obs import telemetry_session

    timings = {}

    def paired_run():
        import time

        start = time.perf_counter()
        plain = _run_once(100)
        timings["off"] = time.perf_counter() - start
        start = time.perf_counter()
        with telemetry_session() as telemetry:
            instrumented = _run_once(100)
        timings["on"] = time.perf_counter() - start
        timings["events"] = len(telemetry.tracer.events())
        return plain, instrumented

    plain, instrumented = benchmark.pedantic(paired_run, rounds=1, iterations=1)
    overhead_ratio = timings["on"] / max(timings["off"], 1e-9)
    benchmark.extra_info["telemetry_overhead_ratio"] = round(overhead_ratio, 4)
    report_rows(
        benchmark,
        "Telemetry overhead (100-node overlay, oracle engine)",
        [{
            "uninstrumented_s": round(timings["off"], 3),
            "instrumented_s": round(timings["on"], 3),
            "overhead_ratio": round(overhead_ratio, 4),
            "trace_events": timings["events"],
        }],
    )
    # Telemetry must not change results...
    assert instrumented.metrics.avg_switch_time == plain.metrics.avg_switch_time
    assert instrumented.n_rounds == plain.n_rounds
    # ...and a single timed pair is noisy, so gate loosely here; the <2%
    # budget is enforced on the pinned summary trend across commits.
    assert overhead_ratio < 1.25


def test_probe_overhead_is_bounded(benchmark):
    """Pin the cost of the protocol probes on the hot path.

    Same pattern as the telemetry-overhead pin: one uninstrumented run
    and one under ``telemetry_session(probes=True)`` inside the timed
    callable, with the instrumented/uninstrumented wallclock ratio
    recorded as the scalar ``probe_overhead_ratio`` extra so the pinned
    ``BENCH_<sha>.json`` trajectory carries it.  Probes are heavier than
    bare telemetry (they record several lifecycle events per segment
    request), so the gate is looser than telemetry's but still bounds
    the layer at a fraction of a run.
    """
    from repro.obs import telemetry_session

    timings = {}

    def paired_run():
        import time

        start = time.perf_counter()
        plain = _run_once(100)
        timings["off"] = time.perf_counter() - start
        start = time.perf_counter()
        with telemetry_session(probes=True) as telemetry:
            probed = _run_once(100)
        timings["on"] = time.perf_counter() - start
        timings["events"] = len(telemetry.probes.lifecycle)
        return plain, probed

    plain, probed = benchmark.pedantic(paired_run, rounds=1, iterations=1)
    probe_overhead_ratio = timings["on"] / max(timings["off"], 1e-9)
    benchmark.extra_info["probe_overhead_ratio"] = round(probe_overhead_ratio, 4)
    report_rows(
        benchmark,
        "Probe overhead (100-node overlay, oracle engine)",
        [{
            "uninstrumented_s": round(timings["off"], 3),
            "probed_s": round(timings["on"], 3),
            "probe_overhead_ratio": round(probe_overhead_ratio, 4),
            "lifecycle_events": timings["events"],
        }],
    )
    # Probes must not change results...
    assert probed.metrics.avg_switch_time == plain.metrics.avg_switch_time
    assert probed.n_rounds == plain.n_rounds
    assert timings["events"] > 0
    # ...and their cost stays bounded (the acceptance criterion).
    assert probe_overhead_ratio < 1.3


def test_overlay_construction_cost(benchmark):
    """Cost of building + augmenting a 1000-node overlay (setup phase only)."""
    from repro.overlay.augment import augment_to_min_degree
    from repro.overlay.generator import generate_trace
    from repro.overlay.topology import build_overlay_from_trace
    import numpy as np

    def build():
        overlay = build_overlay_from_trace(generate_trace(1000, seed=BENCH_SEED))
        augment_to_min_degree(overlay, 5, np.random.default_rng(BENCH_SEED))
        return overlay

    overlay = benchmark(build)
    assert len(overlay) == 1000
    assert all(overlay.degree(n) >= 5 for n in overlay.node_ids)
