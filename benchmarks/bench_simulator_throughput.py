"""Simulator throughput: peer-rounds per second.

Not a paper figure; tracks the cost of the simulation substrate itself so
regressions in the hot path (buffer-map snapshots, priority computation,
greedy assignment, transfer resolution) are visible.  The calibration note
in DESIGN.md ("scaling peer counts is the slow part") is quantified here.
"""

from conftest import BENCH_SEED, report_rows

from repro.experiments.config import make_session_config
from repro.streaming.session import SwitchSession


import repro.core.vector  # noqa: F401  (imported up front: numpy warm-up is setup cost, not measured time)


def _run_once(n_nodes: int, engine: str = "oracle"):
    config = make_session_config(
        n_nodes, seed=BENCH_SEED, max_time=120.0, engine=engine
    )
    session = SwitchSession(config)
    result = session.run()
    return result


def _throughput_case(benchmark, engine: str):
    result = benchmark.pedantic(
        lambda: _run_once(100, engine=engine), rounds=1, iterations=1
    )
    peer_rounds = result.n_peers * result.n_rounds
    rate = peer_rounds / max(result.wallclock_seconds, 1e-9)
    report_rows(
        benchmark,
        f"Simulator throughput (100-node overlay, {engine} engine)",
        [{
            "engine": engine,
            "peers": result.n_peers,
            "rounds": result.n_rounds,
            "peer_rounds": peer_rounds,
            "peer_rounds_per_s": round(rate, 1),
            "wallclock_s": round(result.wallclock_seconds, 2),
        }],
    )
    assert result.metrics.unfinished == 0
    assert rate > 100  # sanity: at least a few hundred peer-rounds per second
    return result


def test_simulator_throughput_small_overlay(benchmark):
    _throughput_case(benchmark, "oracle")


def test_simulator_throughput_small_overlay_vector(benchmark):
    """Same workload on the array-native engine (must stay bit-identical;
    ``tests/test_vector_equivalence.py`` enforces that contract)."""
    _throughput_case(benchmark, "vector")


def test_overlay_construction_cost(benchmark):
    """Cost of building + augmenting a 1000-node overlay (setup phase only)."""
    from repro.overlay.augment import augment_to_min_degree
    from repro.overlay.generator import generate_trace
    from repro.overlay.topology import build_overlay_from_trace
    import numpy as np

    def build():
        overlay = build_overlay_from_trace(generate_trace(1000, seed=BENCH_SEED))
        augment_to_min_degree(overlay, 5, np.random.default_rng(BENCH_SEED))
        return overlay

    overlay = benchmark(build)
    assert len(overlay) == 1000
    assert all(overlay.degree(n) >= 5 for n in overlay.node_ids)
