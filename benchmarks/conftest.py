"""Shared helpers for the benchmark harness.

Every ``bench_fig*.py`` module regenerates the data behind one figure of the
paper and prints the same rows/series the paper reports.  By default the
overlay sizes are reduced so the whole suite finishes in a few minutes on a
laptop; set ``REPRO_PAPER_SCALE=1`` to run the paper's full 100--8000-node
sweep (this takes hours).

Set ``REPRO_RESULTS_DIR=/path/to/results`` to persist every simulation in
the on-disk result store: a repeated benchmark run (and any ``repro-gossip
figure``/``sweep`` invocation over the same directory) then replays from
disk instead of re-simulating.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

import pytest

from repro.experiments.config import (
    BENCH_RATIO_TRACK_SIZE,
    BENCH_SWEEP_SIZES,
    PAPER_SWEEP_SIZES,
    RATIO_TRACK_SIZE,
    paper_scale_enabled,
)
from repro.experiments.store import ResultStore, default_results_dir
from repro.metrics.report import format_table

#: Sizes used by the sweep figures in benchmark mode.
SWEEP_SIZES: Sequence[int] = PAPER_SWEEP_SIZES if paper_scale_enabled() else BENCH_SWEEP_SIZES

#: Overlay size used by the ratio-track figures in benchmark mode.
TRACK_SIZE: int = RATIO_TRACK_SIZE if paper_scale_enabled() else BENCH_RATIO_TRACK_SIZE

#: Seed shared by all benchmark simulations (keeps paired runs comparable).
BENCH_SEED: int = 1

#: Persistent result store (``REPRO_RESULTS_DIR``), or ``None`` to simulate
#: from scratch on every benchmark run.
RESULTS_STORE: Optional[ResultStore] = (
    ResultStore(default_results_dir()) if default_results_dir() else None
)


def report_figure(benchmark, figure_result) -> None:
    """Print a figure's rows and attach them to the benchmark record."""
    text = figure_result.to_text()
    print()
    print(text)
    benchmark.extra_info["figure"] = figure_result.figure_id
    benchmark.extra_info["rows"] = figure_result.rows
    benchmark.extra_info["meta"] = dict(figure_result.meta)


def report_rows(benchmark, title: str, rows: Sequence[Mapping[str, object]]) -> None:
    """Print arbitrary result rows and attach them to the benchmark record."""
    print()
    print(title)
    print(format_table(list(rows)))
    benchmark.extra_info["rows"] = list(rows)


@pytest.fixture(scope="session", autouse=True)
def _announce_scale():
    scale = "paper scale" if paper_scale_enabled() else "reduced benchmark scale"
    storage = (f"result store at {RESULTS_STORE.root}" if RESULTS_STORE is not None
               else "no result store (set REPRO_RESULTS_DIR to enable replay)")
    print(f"\n[repro benchmarks] running at {scale}: sweep sizes {tuple(SWEEP_SIZES)}, "
          f"ratio-track size {TRACK_SIZE}; {storage}")
    yield
