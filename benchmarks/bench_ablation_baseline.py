"""Ablation: the two readings of the normal-switch baseline.

The paper's baseline gives the old source strict priority.  How much
inbound rate is "left over" for the new source admits two readings (see
``repro.core.normal_switch``): the *reserved* reading (no new-source
requests while the undelivered backlog exceeds the inbound rate) and the
*opportunistic* reading (unschedulable old-source capacity spills over
immediately).  This ablation quantifies the gap and shows that the fast
algorithm beats both.
"""

from conftest import BENCH_SEED, report_rows

from repro.core.fast_switch import FastSwitchAlgorithm
from repro.core.normal_switch import NormalSwitchAlgorithm
from repro.experiments.config import make_session_config
from repro.streaming.session import SwitchSession

ABLATION_NODES = 150


def _run(label, factory):
    config = make_session_config(ABLATION_NODES, seed=BENCH_SEED, max_time=120.0)
    result = SwitchSession(config, algorithm_factory=factory).run()
    return {
        "algorithm": label,
        "avg_switch_time": round(result.metrics.avg_switch_time, 3),
        "avg_finish_S1": round(result.metrics.avg_finish_old, 3),
        "overhead": round(result.overhead_ratio, 4),
        "unfinished": result.metrics.unfinished,
    }


def test_ablation_baseline_variants(benchmark):
    def run_all():
        return [
            _run("normal (reserved)", NormalSwitchAlgorithm),
            _run("normal (opportunistic)",
                 lambda: NormalSwitchAlgorithm(opportunistic_leftover=True)),
            _run("fast", FastSwitchAlgorithm),
        ]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report_rows(benchmark, "Ablation: baseline variants vs the fast algorithm", rows)

    by_name = {row["algorithm"]: row for row in rows}
    assert all(row["unfinished"] == 0 for row in rows)
    fast = by_name["fast"]["avg_switch_time"]
    # the fast algorithm beats (or at least matches) both baseline readings
    assert fast <= by_name["normal (reserved)"]["avg_switch_time"] + 0.5
    assert fast <= by_name["normal (opportunistic)"]["avg_switch_time"] + 0.5
