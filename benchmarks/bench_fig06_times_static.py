"""Figure 6: average finishing/preparing times vs overlay size (static).

For every overlay size the paper plots four bars: the normal algorithm's
average finishing time of S1, the fast algorithm's finishing time of S1,
the fast algorithm's preparing time of S2 and the normal algorithm's
preparing time of S2 -- in that (non-decreasing) order.  The fast algorithm
"splits the difference" between the baseline's finish and prepare times.
"""

from conftest import BENCH_SEED, RESULTS_STORE, SWEEP_SIZES, report_figure

from repro.experiments.figures import figure6


def test_fig06_times_static(benchmark):
    result = benchmark.pedantic(
        lambda: figure6(sizes=SWEEP_SIZES, seed=BENCH_SEED, store=RESULTS_STORE),
        rounds=1,
        iterations=1,
    )
    report_figure(benchmark, result)

    slack = 1.5  # seconds of tolerance (about one scheduling period)
    for row in result.rows:
        assert row["normal_finish_S1"] > 0
        # the paper's bar ordering, allowing a period of noise
        assert row["normal_finish_S1"] <= row["fast_finish_S1"] + slack
        assert row["fast_finish_S1"] <= row["fast_prepare_S2"] + slack
        assert row["fast_prepare_S2"] <= row["normal_prepare_S2"] + slack
