"""Figure 11: average switch time and its reduction ratio (dynamic).

The paper reports dynamic-environment results consistent with the static
ones: the fast algorithm keeps its 20-30% switch-time reduction under 5%
per-period churn.
"""

from conftest import BENCH_SEED, RESULTS_STORE, SWEEP_SIZES, report_figure

from repro.experiments.figures import figure11


def test_fig11_switch_time_dynamic(benchmark):
    result = benchmark.pedantic(
        lambda: figure11(sizes=SWEEP_SIZES, seed=BENCH_SEED, store=RESULTS_STORE),
        rounds=1,
        iterations=1,
    )
    report_figure(benchmark, result)

    for row in result.rows:
        assert row["normal_switch_time"] > 0
        assert row["fast_switch_time"] > 0
        assert row["reduction_ratio"] > -0.10  # churn noise tolerance
    mean_reduction = sum(r["reduction_ratio"] for r in result.rows) / len(result.rows)
    assert mean_reduction > -0.02
