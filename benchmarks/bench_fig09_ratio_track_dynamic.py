"""Figure 9: ratio track in a dynamic network (5% churn per period).

Same workload as Figure 5 but with the paper's dynamic environment: every
scheduling period 5% of the peers leave and 5% join (joiners simply follow
their neighbours' playback point and are not tracked by the switch-time
metrics).  The paper reports results "consistent with those in static
environments".
"""

from conftest import BENCH_SEED, RESULTS_STORE, TRACK_SIZE, report_figure

from repro.experiments.figures import figure9


def test_fig09_ratio_track_dynamic(benchmark):
    result = benchmark.pedantic(
        lambda: figure9(n_nodes=TRACK_SIZE, seed=BENCH_SEED, max_time=90.0, store=RESULTS_STORE),
        rounds=1,
        iterations=1,
    )
    report_figure(benchmark, result)

    final = result.rows[-1]
    assert final["normal_undelivered_ratio_S1"] <= 0.05
    assert final["fast_undelivered_ratio_S1"] <= 0.05
    assert final["normal_delivered_ratio_S2"] >= 0.95
    assert final["fast_delivered_ratio_S2"] >= 0.95
