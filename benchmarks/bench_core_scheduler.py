"""Micro-benchmark of the per-peer scheduling hot path.

The greedy supplier assignment plus priority computation runs once per peer
per scheduling period; its cost bounds how large an overlay the simulator
can handle.  This benchmark measures one realistic invocation (about 100
candidate segments across 6 neighbours, the steady-state shape during a
switch).
"""

from conftest import report_rows

from repro.core.base import LocalView, NeighbourView
from repro.core.fast_switch import FastSwitchAlgorithm
from repro.core.normal_switch import NormalSwitchAlgorithm


def _realistic_view(n_neighbours: int = 6, backlog: int = 80, startup: int = 50) -> LocalView:
    id_end = 899
    old_needed = frozenset(range(id_end - backlog + 1, id_end + 1))
    new_needed = frozenset(range(900, 900 + startup))
    neighbours = []
    for j in range(n_neighbours):
        # each neighbour holds a staggered subset of both windows
        old_part = frozenset(range(id_end - backlog + 1 + 7 * j, id_end + 1))
        new_part = frozenset(range(900, 900 + 10 + 8 * j))
        available = old_part | new_part
        neighbours.append(
            NeighbourView(
                node_id=j,
                send_rate=12.0 + j,
                available=available,
                positions={seg: 1 + (seg % 500) for seg in available},
                buffer_capacity=600,
            )
        )
    return LocalView(
        now=5.0,
        tau=1.0,
        play_rate=10.0,
        inbound_rate=15.0,
        playback_id=id_end - backlog - 20,
        startup_quota_old=10,
        startup_quota_new=50,
        old_needed=old_needed,
        new_needed=new_needed,
        id_end=id_end,
        id_begin=900,
        neighbours=tuple(neighbours),
    )


def test_fast_switch_scheduling_hot_path(benchmark):
    view = _realistic_view()
    algorithm = FastSwitchAlgorithm()
    decision = benchmark(lambda: algorithm.schedule(view))
    assert 0 < len(decision.requests) <= view.capacity_segments()
    report_rows(
        benchmark,
        "Fast switch decision summary",
        [{
            "requests": len(decision.requests),
            "old": len(decision.old_requests),
            "new": len(decision.new_requests),
            "i1": round(decision.i1, 2),
            "i2": round(decision.i2, 2),
        }],
    )


def test_normal_switch_scheduling_hot_path(benchmark):
    view = _realistic_view()
    algorithm = NormalSwitchAlgorithm()
    decision = benchmark(lambda: algorithm.schedule(view))
    assert 0 < len(decision.requests) <= view.capacity_segments()


def test_fast_switch_scales_with_neighbourhood(benchmark):
    """One call on a denser neighbourhood (M=12) stays affordable."""
    view = _realistic_view(n_neighbours=12, backlog=120)
    algorithm = FastSwitchAlgorithm()
    decision = benchmark(lambda: algorithm.schedule(view))
    assert len(decision.requests) <= view.capacity_segments()
