"""Figure 8: communication overhead vs overlay size (static).

The paper computes the overhead as buffer-map bits over data bits and
reports values slightly above 1% for both algorithms, with the fast
algorithm's overhead a little lower because it utilises bandwidth better.
"""

from conftest import BENCH_SEED, RESULTS_STORE, SWEEP_SIZES, report_figure

from repro.experiments.figures import figure8


def test_fig08_overhead_static(benchmark):
    result = benchmark.pedantic(
        lambda: figure8(sizes=SWEEP_SIZES, seed=BENCH_SEED, store=RESULTS_STORE),
        rounds=1,
        iterations=1,
    )
    report_figure(benchmark, result)

    for row in result.rows:
        # small, paper reports ~1-2%; the reduced-scale simulation sits a bit
        # higher because runs are shorter (control traffic is amortised over
        # fewer delivered segments), but stays in the same order of magnitude
        assert 0.001 < row["fast_overhead"] < 0.06
        assert 0.001 < row["normal_overhead"] < 0.06
        # the fast algorithm does not add overhead
        assert row["fast_overhead"] <= row["normal_overhead"] * 1.15
