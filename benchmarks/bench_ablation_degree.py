"""Ablation: neighbour degree M.

The paper: "M=5 is usually a good practical choice and using a larger M
cannot bring more benefit."  This ablation sweeps the minimum neighbour
degree and reports the fast algorithm's switch time and the communication
overhead: a larger M buys little or no switch-time improvement while the
buffer-map overhead grows linearly with M.
"""

from conftest import BENCH_SEED, report_rows

from repro.experiments.config import make_session_config
from repro.experiments.runner import run_single

ABLATION_NODES = 150
DEGREES = (3, 5, 8, 12)


def _run_degree(min_degree: int) -> dict:
    config = make_session_config(
        ABLATION_NODES, seed=BENCH_SEED, max_time=120.0, min_degree=min_degree
    )
    result = run_single(config)
    return {
        "M": min_degree,
        "avg_switch_time": round(result.metrics.avg_switch_time, 3),
        "overhead": round(result.overhead_ratio, 4),
        "avg_degree": round(result.average_degree, 2),
        "unfinished": result.metrics.unfinished,
    }


def test_ablation_neighbour_degree(benchmark):
    rows = benchmark.pedantic(
        lambda: [_run_degree(m) for m in DEGREES], rounds=1, iterations=1
    )
    report_rows(benchmark, "Ablation: minimum neighbour degree M (fast switch)", rows)

    by_degree = {row["M"]: row for row in rows}
    assert all(row["unfinished"] == 0 for row in rows)
    # Overhead grows with M (more buffer maps per period).
    assert by_degree[12]["overhead"] > by_degree[3]["overhead"]
    # Going beyond the paper's M=5 buys little: no more than ~20% improvement
    # over M=5 even with more than double the neighbours.
    assert by_degree[12]["avg_switch_time"] >= by_degree[5]["avg_switch_time"] * 0.8
