"""Micro-benchmarks and validation of the closed-form model (Section 3).

Not a paper figure, but the design ablation DESIGN.md calls out: how much
does the four-case allocation built on the closed-form optimum matter, and
how cheap is it to evaluate per peer per scheduling period?
"""

import numpy as np
from conftest import report_rows

from repro.core.allocation import allocate_for_model
from repro.core.model import optimal_split


def test_model_optimal_split_throughput(benchmark):
    """Cost of one closed-form evaluation (executed once per peer per period)."""

    def evaluate():
        return optimal_split(15.0, 73.0, 42.0, 10.0, 10.0)

    split = benchmark(evaluate)
    assert split.r1 + split.r2 == 15.0
    benchmark.extra_info["r1"] = split.r1
    benchmark.extra_info["t2"] = split.t2


def test_model_four_case_allocation_throughput(benchmark):
    """Cost of the full allocation (model + four cases)."""

    def evaluate():
        return allocate_for_model(15.0, 73.0, 42.0, 10.0, 10.0, o1=9.0, o2=4.0)

    allocation = benchmark(evaluate)
    assert allocation.total <= 15.0 + 1e-9


def test_model_predicted_switch_time_table(benchmark):
    """Tabulate the model's predicted switch time over realistic backlogs.

    This regenerates the analytic sanity check used in EXPERIMENTS.md: the
    model's T2 is a lower bound for the simulated switch times.
    """

    def build_table():
        rows = []
        for q1 in (20, 50, 100, 150):
            for inbound in (10, 15, 25, 33):
                split = optimal_split(float(inbound), float(q1), 50.0, 10.0, 10.0)
                rows.append(
                    {
                        "Q1": q1,
                        "I": inbound,
                        "r1": round(split.r1, 3),
                        "r2": round(split.r2, 3),
                        "T2_optimal": round(split.t2, 3),
                    }
                )
        return rows

    rows = benchmark(build_table)
    report_rows(benchmark, "Model-predicted optimal switch times", rows)
    t2 = np.array([row["T2_optimal"] for row in rows])
    assert (t2 > 0).all()
    # larger backlogs can only delay the switch, for the same inbound rate
    by_inbound = {i: [r["T2_optimal"] for r in rows if r["I"] == i] for i in (10, 15, 25, 33)}
    for series in by_inbound.values():
        assert series == sorted(series)
