"""Figure 5: undelivered/delivered ratio track in a static network.

The paper tracks, on a 1000-node static overlay, the average undelivered
ratio of the old source and the delivered ratio of the new source over time
for both algorithms.  The expected shape: the normal algorithm drains the
old stream faster but gathers the new stream's startup window later; the
fast algorithm balances the two and completes the switch earlier.
"""

from conftest import BENCH_SEED, RESULTS_STORE, TRACK_SIZE, report_figure

from repro.experiments.figures import figure5


def test_fig05_ratio_track_static(benchmark):
    result = benchmark.pedantic(
        lambda: figure5(n_nodes=TRACK_SIZE, seed=BENCH_SEED, max_time=90.0, store=RESULTS_STORE),
        rounds=1,
        iterations=1,
    )
    report_figure(benchmark, result)

    final = result.rows[-1]
    # Everyone eventually drains the old stream and gathers the new one.
    assert final["normal_undelivered_ratio_S1"] <= 1e-6
    assert final["fast_undelivered_ratio_S1"] <= 1e-6
    assert final["normal_delivered_ratio_S2"] >= 1.0 - 1e-6
    assert final["fast_delivered_ratio_S2"] >= 1.0 - 1e-6

    # Paper shape: early in the switch the fast algorithm has gathered more
    # of the new stream, while the normal algorithm has drained more of the
    # old one (it gives the old source strict priority).
    mid = result.rows[len(result.rows) // 3]
    assert mid["fast_delivered_ratio_S2"] >= mid["normal_delivered_ratio_S2"] - 0.05
    assert mid["normal_undelivered_ratio_S1"] <= mid["fast_undelivered_ratio_S1"] + 0.05
