"""Ablation: analytic vs simulated warm-up.

DESIGN.md substitutes the paper's "run the system until it is stable"
warm-up with an analytic seeding of each peer's backlog (hop distance and
bandwidth based).  This ablation validates the substitution: under both
warm-up modes the fast algorithm's advantage over the normal algorithm has
the same sign and a similar magnitude.
"""

from conftest import report_rows

from repro.experiments.config import make_session_config
from repro.experiments.runner import run_pair
from repro.metrics.report import reduction_ratio

ABLATION_NODES = 100


def _run(warmup: str) -> dict:
    overrides = {"max_time": 120.0, "warmup": warmup}
    if warmup == "simulated":
        overrides["warmup_duration"] = 40.0
    config = make_session_config(ABLATION_NODES, seed=2, **overrides)
    pair = run_pair(config)
    return {
        "warmup": warmup,
        "normal_switch_time": round(pair.normal.metrics.avg_switch_time, 3),
        "fast_switch_time": round(pair.fast.metrics.avg_switch_time, 3),
        "reduction": round(
            reduction_ratio(
                pair.normal.metrics.avg_switch_time, pair.fast.metrics.avg_switch_time
            ),
            3,
        ),
    }


def test_ablation_warmup_mode(benchmark):
    rows = benchmark.pedantic(
        lambda: [_run("analytic"), _run("simulated")], rounds=1, iterations=1
    )
    report_rows(benchmark, "Ablation: warm-up mode (paired fast vs normal)", rows)

    for row in rows:
        assert row["normal_switch_time"] > 0
        assert row["fast_switch_time"] > 0
        # under both warm-up models the fast algorithm does not lose
        assert row["reduction"] > -0.05
