"""Figure 7: average switch time and its reduction ratio (static).

The paper's headline result: the fast switch algorithm reduces the average
switch time by 20--30% relative to the normal algorithm, with the reduction
ratio tending to increase with the network size.  At the reduced benchmark
sizes the measured reduction is typically 5--20% and grows towards the
paper's band at the full scale (see EXPERIMENTS.md).
"""

from conftest import BENCH_SEED, RESULTS_STORE, SWEEP_SIZES, report_figure

from repro.experiments.figures import figure7


def test_fig07_switch_time_static(benchmark):
    result = benchmark.pedantic(
        lambda: figure7(sizes=SWEEP_SIZES, seed=BENCH_SEED, store=RESULTS_STORE),
        rounds=1,
        iterations=1,
    )
    report_figure(benchmark, result)

    for row in result.rows:
        assert row["normal_switch_time"] > 0
        assert row["fast_switch_time"] > 0
        # The fast algorithm must not lose (small negative noise tolerated).
        assert row["reduction_ratio"] > -0.05
    # On average across sizes the fast algorithm clearly wins.
    mean_reduction = sum(r["reduction_ratio"] for r in result.rows) / len(result.rows)
    assert mean_reduction > 0.0
