#!/usr/bin/env python
"""Run the pinned perf-trajectory benchmark subset and summarise it.

This script seeds the repository's performance trajectory: it runs a
*pinned* subset of the pytest-benchmark suite --

* ``bench_simulator_throughput.py`` -- end-to-end simulator throughput,
* ``bench_core_scheduler.py``       -- the switch-scheduling hot path,
* ``bench_fig07_switch_time_static.py`` -- one full figure regeneration,
* ``bench_universe_sharded.py``     -- sharded runtime vs. serial path,

-- and writes a compact ``BENCH_<git-sha>.json`` summary at the repository
root, so successive commits leave a comparable perf record behind (CI
uploads the file as a workflow artifact).  The summary format is
documented in ``docs/architecture.md`` (section "Performance trajectory").

Usage::

    python benchmarks/run_benchmarks.py [--json] [--output-dir DIR]
        [--check] [--check-threshold FRACTION]

``--json`` additionally prints the summary to stdout.  ``--check`` diffs
the fresh summary against the most recent prior ``BENCH_*.json`` in the
output directory (ordered by the ``created`` timestamp recorded *inside*
each summary, so discovery is deterministic regardless of file mtimes)
and exits non-zero when any shared benchmark's mean regressed by more
than the threshold (default 20%).  When the working tree is dirty the
sha gains a ``-dirty`` suffix, so an uncommitted run never overwrites --
or masquerades as -- the clean record of the commit it sits on.  The
script needs ``pytest-benchmark`` (part of the ``[test]`` extra); without
it, it exits with a clear message instead of a stack trace.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

#: The pinned benchmark subset, relative to the ``benchmarks/`` directory.
PINNED_BENCHMARKS = (
    "bench_simulator_throughput.py",
    "bench_core_scheduler.py",
    "bench_fig07_switch_time_static.py",
    "bench_universe_sharded.py",
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def working_tree_dirty(repo_root: Path) -> bool:
    """Whether the checkout has uncommitted changes (False outside git)."""
    try:
        out = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            check=True,
        )
        return bool(out.stdout.strip())
    except (OSError, subprocess.CalledProcessError):
        return False


def git_sha(repo_root: Path) -> str:
    """The current commit's short sha (``unknown`` outside a git checkout).

    A dirty working tree gets a ``-dirty`` suffix: the measured code is
    not the commit's code, and the summary of an uncommitted run must
    neither overwrite the commit's clean ``BENCH_<sha>.json`` record nor
    be mistaken for it by ``--check`` discovery.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            check=True,
        )
        sha = out.stdout.strip() or "unknown"
    except (OSError, subprocess.CalledProcessError):
        return "unknown"
    if sha != "unknown" and working_tree_dirty(repo_root):
        sha += "-dirty"
    return sha


def summarise(payload: Mapping[str, Any], sha: str) -> Dict[str, Any]:
    """Reduce a pytest-benchmark JSON payload to the trajectory summary.

    The summary keeps one row per benchmark -- name, mean/stddev/min
    seconds and the round count, plus any *scalar* ``extra_info`` the
    benchmark attached (e.g. the sharded benchmark's serial wall time and
    peak RSS; tables and other nested structures are dropped) -- plus the
    commit sha, the machine info pytest-benchmark recorded and a UTC
    timestamp.  All fields are plain JSON scalars so summaries diff
    cleanly across commits.
    """
    rows: List[Dict[str, Any]] = []
    for bench in payload.get("benchmarks", []):
        stats = bench.get("stats", {})
        row: Dict[str, Any] = {
            "name": bench.get("fullname", bench.get("name", "?")),
            "mean_s": float(stats.get("mean", 0.0)),
            "stddev_s": float(stats.get("stddev", 0.0)),
            "min_s": float(stats.get("min", 0.0)),
            "rounds": int(stats.get("rounds", 0)),
        }
        extra = {
            key: value
            for key, value in (bench.get("extra_info") or {}).items()
            if isinstance(value, (str, int, float, bool)) or value is None
        }
        if extra:
            row["extra"] = extra
        rows.append(row)
    rows.sort(key=lambda row: row["name"])
    machine = payload.get("machine_info", {})
    return {
        "schema": 1,
        "git_sha": sha,
        "created": datetime.now(timezone.utc).isoformat(),
        "python": machine.get("python_version", ""),
        "machine": machine.get("machine", ""),
        "benchmarks": rows,
    }


def find_previous_summary(
    output_dir: Path, current_name: str
) -> Optional[Dict[str, Any]]:
    """The most recent prior ``BENCH_*.json`` summary in ``output_dir``.

    "Most recent" is decided by the ``created`` timestamp recorded inside
    each summary (ties broken by filename), never by file mtime, so the
    choice is deterministic across checkouts and CI caches.  The file the
    current run is about to (over)write, unreadable files, non-summary
    JSON and summaries without a ``created`` timestamp are all skipped --
    the same rule :func:`repro.analysis.bench.load_bench_summaries`
    applies, so the trend view and this gate agree on what "previous"
    means; under a bare string sort a timestampless file would collapse
    to ``""`` and a malformed summary could become the comparison
    baseline.  Returns the parsed summary, or ``None``.
    """
    candidates: List[Any] = []
    for path in sorted(Path(output_dir).glob("BENCH_*.json")):
        if path.name == current_name:
            continue
        try:
            with path.open("r", encoding="utf-8") as handle:
                summary = json.load(handle)
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(summary, dict) or "benchmarks" not in summary:
            continue
        created = str(summary.get("created", "") or "")
        if not created:
            continue
        candidates.append((created, path.name, summary))
    if not candidates:
        return None
    candidates.sort(key=lambda item: (item[0], item[1]))
    return candidates[-1][2]


def diff_summaries(
    previous: Mapping[str, Any],
    current: Mapping[str, Any],
    *,
    threshold: float = 0.20,
) -> List[Dict[str, Any]]:
    """Per-benchmark mean-time change between two trajectory summaries.

    Only benchmarks present in both summaries (with a positive previous
    mean) are compared -- renamed or newly added benchmarks cannot
    regress.  ``change`` is the signed fractional change of ``mean_s``;
    rows with ``change > threshold`` are flagged ``regressed``.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    previous_means = {
        row["name"]: float(row["mean_s"])
        for row in previous.get("benchmarks", [])
        if "name" in row and "mean_s" in row
    }
    rows: List[Dict[str, Any]] = []
    for row in current.get("benchmarks", []):
        before = previous_means.get(row.get("name"))
        if before is None or before <= 0:
            continue
        change = (float(row["mean_s"]) - before) / before
        rows.append(
            {
                "name": row["name"],
                "previous_mean_s": before,
                "mean_s": float(row["mean_s"]),
                "change": change,
                "regressed": change > threshold,
            }
        )
    return rows


def run_pinned_suite(repo_root: Path) -> Optional[Dict[str, Any]]:
    """Execute the pinned subset; returns the raw pytest-benchmark payload."""
    targets = [str(repo_root / "benchmarks" / name) for name in PINNED_BENCHMARKS]
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "benchmark.json"
        command = [
            sys.executable,
            "-m",
            "pytest",
            *targets,
            "-q",
            "--benchmark-only",
            f"--benchmark-json={raw_path}",
        ]
        proc = subprocess.run(command, cwd=repo_root)
        if proc.returncode != 0 or not raw_path.exists():
            return None
        with raw_path.open("r", encoding="utf-8") as handle:
            return json.load(handle)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="run the pinned benchmark subset and write BENCH_<sha>.json"
    )
    parser.add_argument("--json", action="store_true",
                        help="also print the summary to stdout")
    parser.add_argument("--output-dir", default=str(REPO_ROOT),
                        help="directory for the BENCH_<sha>.json summary "
                             "(default: the repository root)")
    parser.add_argument("--check", action="store_true",
                        help="diff against the most recent prior BENCH_*.json "
                             "and fail on mean-time regressions beyond the "
                             "threshold")
    parser.add_argument("--check-threshold", type=float, default=0.20,
                        metavar="FRACTION",
                        help="fractional mean-time regression tolerated by "
                             "--check (default: 0.20)")
    args = parser.parse_args(argv)

    try:
        import pytest_benchmark  # noqa: F401
    except ImportError:
        print(
            "error: pytest-benchmark is not installed; "
            "run `pip install -e .[test]` first",
            file=sys.stderr,
        )
        return 1

    payload = run_pinned_suite(REPO_ROOT)
    if payload is None:
        print("error: the pinned benchmark suite failed", file=sys.stderr)
        return 1

    sha = git_sha(REPO_ROOT)
    summary = summarise(payload, sha)
    output = Path(args.output_dir) / f"BENCH_{sha}.json"
    previous = (
        find_previous_summary(Path(args.output_dir), output.name)
        if args.check
        else None
    )
    with output.open("w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output} ({len(summary['benchmarks'])} benchmarks)", file=sys.stderr)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))

    if args.check:
        if previous is None:
            print(
                "check: no prior BENCH_*.json summary found; nothing to compare",
                file=sys.stderr,
            )
            return 0
        rows = diff_summaries(previous, summary, threshold=args.check_threshold)
        for row in rows:
            marker = "REGRESSED" if row["regressed"] else "ok"
            print(
                f"check: {row['name']}: {row['previous_mean_s']:.6f}s -> "
                f"{row['mean_s']:.6f}s ({row['change']:+.1%}) {marker}",
                file=sys.stderr,
            )
        regressed = [row for row in rows if row["regressed"]]
        if regressed:
            print(
                f"error: {len(regressed)} benchmark(s) regressed beyond "
                f"{args.check_threshold:.0%} vs "
                f"BENCH_{previous.get('git_sha', '?')}.json",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
