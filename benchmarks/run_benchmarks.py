#!/usr/bin/env python
"""Run the pinned perf-trajectory benchmark subset and summarise it.

This script seeds the repository's performance trajectory: it runs a
*pinned* subset of the pytest-benchmark suite --

* ``bench_simulator_throughput.py`` -- end-to-end simulator throughput,
* ``bench_core_scheduler.py``       -- the switch-scheduling hot path,
* ``bench_fig07_switch_time_static.py`` -- one full figure regeneration,

-- and writes a compact ``BENCH_<git-sha>.json`` summary at the repository
root, so successive commits leave a comparable perf record behind (CI
uploads the file as a workflow artifact).  The summary format is
documented in ``docs/architecture.md`` (section "Performance trajectory").

Usage::

    python benchmarks/run_benchmarks.py [--json] [--output-dir DIR]

``--json`` additionally prints the summary to stdout.  The script needs
``pytest-benchmark`` (part of the ``[test]`` extra); without it, it exits
with a clear message instead of a stack trace.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

#: The pinned benchmark subset, relative to the ``benchmarks/`` directory.
PINNED_BENCHMARKS = (
    "bench_simulator_throughput.py",
    "bench_core_scheduler.py",
    "bench_fig07_switch_time_static.py",
)

REPO_ROOT = Path(__file__).resolve().parent.parent


def git_sha(repo_root: Path) -> str:
    """The current commit's short sha (``unknown`` outside a git checkout)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip() or "unknown"
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def summarise(payload: Mapping[str, Any], sha: str) -> Dict[str, Any]:
    """Reduce a pytest-benchmark JSON payload to the trajectory summary.

    The summary keeps one row per benchmark -- name, mean/stddev/min
    seconds and the round count -- plus the commit sha, the machine info
    pytest-benchmark recorded and a UTC timestamp.  All fields are plain
    JSON scalars so summaries diff cleanly across commits.
    """
    rows: List[Dict[str, Any]] = []
    for bench in payload.get("benchmarks", []):
        stats = bench.get("stats", {})
        rows.append(
            {
                "name": bench.get("fullname", bench.get("name", "?")),
                "mean_s": float(stats.get("mean", 0.0)),
                "stddev_s": float(stats.get("stddev", 0.0)),
                "min_s": float(stats.get("min", 0.0)),
                "rounds": int(stats.get("rounds", 0)),
            }
        )
    rows.sort(key=lambda row: row["name"])
    machine = payload.get("machine_info", {})
    return {
        "schema": 1,
        "git_sha": sha,
        "created": datetime.now(timezone.utc).isoformat(),
        "python": machine.get("python_version", ""),
        "machine": machine.get("machine", ""),
        "benchmarks": rows,
    }


def run_pinned_suite(repo_root: Path) -> Optional[Dict[str, Any]]:
    """Execute the pinned subset; returns the raw pytest-benchmark payload."""
    targets = [str(repo_root / "benchmarks" / name) for name in PINNED_BENCHMARKS]
    with tempfile.TemporaryDirectory() as tmp:
        raw_path = Path(tmp) / "benchmark.json"
        command = [
            sys.executable,
            "-m",
            "pytest",
            *targets,
            "-q",
            "--benchmark-only",
            f"--benchmark-json={raw_path}",
        ]
        proc = subprocess.run(command, cwd=repo_root)
        if proc.returncode != 0 or not raw_path.exists():
            return None
        with raw_path.open("r", encoding="utf-8") as handle:
            return json.load(handle)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="run the pinned benchmark subset and write BENCH_<sha>.json"
    )
    parser.add_argument("--json", action="store_true",
                        help="also print the summary to stdout")
    parser.add_argument("--output-dir", default=str(REPO_ROOT),
                        help="directory for the BENCH_<sha>.json summary "
                             "(default: the repository root)")
    args = parser.parse_args(argv)

    try:
        import pytest_benchmark  # noqa: F401
    except ImportError:
        print(
            "error: pytest-benchmark is not installed; "
            "run `pip install -e .[test]` first",
            file=sys.stderr,
        )
        return 1

    payload = run_pinned_suite(REPO_ROOT)
    if payload is None:
        print("error: the pinned benchmark suite failed", file=sys.stderr)
        return 1

    sha = git_sha(REPO_ROOT)
    summary = summarise(payload, sha)
    output = Path(args.output_dir) / f"BENCH_{sha}.json"
    with output.open("w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {output} ({len(summary['benchmarks'])} benchmarks)", file=sys.stderr)
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main())
