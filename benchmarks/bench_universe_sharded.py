"""Sharded universe runtime vs. the serial path: wall time and peak RSS.

Runs the same small universe twice -- once serially on the canonical
shared-engine path, once through the sharded runtime (``repro.dist``:
shard plan + long-lived worker pool + streaming sketches) -- asserts the
two are bit-identical at repetition level, and records both wall times
plus the parent/worker peak RSS into the benchmark's ``extra_info`` so
``BENCH_<sha>.json`` tracks the sharded runtime's overhead trajectory.

At the reduced benchmark scale the sharded path is *not* expected to win
(process start-up dominates a few seconds of simulation); what the
trajectory guards is that the orchestration overhead stays bounded.
"""

from __future__ import annotations

import resource
import time

from repro.channels.runner import rep_to_dict, run_universe
from repro.channels.universe import UniverseSpec

#: Small enough to finish in seconds, big enough that shards hold several
#: channel meshes each.
SHARDED_BENCH_SPEC = UniverseSpec(
    name="bench-sharded",
    description="sharded-runtime benchmark universe",
    n_channels=6,
    n_viewers=90,
    zipf_exponent=1.0,
    min_audience=10,
    surfer_fraction=0.4,
    surfer_zap_rate=0.15,
    loyal_zap_rate=0.01,
    duration=20.0,
)

BENCH_REPETITIONS = 2
BENCH_SHARDS = 4
BENCH_WORKERS = 2


def _peak_rss_mb(who: int) -> float:
    """Peak RSS of this process (or its children) in MiB (Linux: KiB units)."""
    return resource.getrusage(who).ru_maxrss / 1024.0


def test_universe_sharded_vs_serial(benchmark):
    serial_start = time.perf_counter()
    serial = run_universe(SHARDED_BENCH_SPEC, seed=0, repetitions=BENCH_REPETITIONS)
    serial_s = time.perf_counter() - serial_start

    sharded = benchmark.pedantic(
        lambda: run_universe(
            SHARDED_BENCH_SPEC,
            seed=0,
            repetitions=BENCH_REPETITIONS,
            shards=BENCH_SHARDS,
            workers=BENCH_WORKERS,
        ),
        rounds=1,
        iterations=1,
    )

    # The acceptance property perf must never trade away: bit-identity.
    assert [rep_to_dict(rep) for rep in sharded.reps] == [
        rep_to_dict(rep) for rep in serial.reps
    ]

    benchmark.extra_info["serial_s"] = round(serial_s, 6)
    benchmark.extra_info["shards"] = BENCH_SHARDS
    benchmark.extra_info["workers"] = BENCH_WORKERS
    benchmark.extra_info["repetitions"] = BENCH_REPETITIONS
    benchmark.extra_info["peak_rss_self_mb"] = round(
        _peak_rss_mb(resource.RUSAGE_SELF), 2
    )
    benchmark.extra_info["peak_rss_children_mb"] = round(
        _peak_rss_mb(resource.RUSAGE_CHILDREN), 2
    )
