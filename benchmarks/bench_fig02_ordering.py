"""Figure 2: request ordering of the fast vs the normal switch algorithm.

Regenerates the paper's illustrative example (7 request slots, 5 old-source
and 5 new-source candidates) and micro-benchmarks one scheduling call of
each algorithm on that view.
"""

from conftest import report_figure

from repro.experiments.figures import figure2


def test_fig02_request_ordering(benchmark):
    result = benchmark(figure2)
    report_figure(benchmark, result)

    rows = {row["algorithm"]: row for row in result.rows}
    # Paper shape: the normal algorithm fills its slots with the old source
    # first; the fast algorithm interleaves both sources.
    assert rows["normal"]["old_requested"] == 5
    assert rows["normal"]["new_requested"] == 2
    assert rows["fast"]["new_requested"] > rows["normal"]["new_requested"]
    assert rows["fast"]["old_requested"] + rows["fast"]["new_requested"] == 7
