"""Figure 12: communication overhead vs overlay size (dynamic)."""

from conftest import BENCH_SEED, RESULTS_STORE, SWEEP_SIZES, report_figure

from repro.experiments.figures import figure12


def test_fig12_overhead_dynamic(benchmark):
    result = benchmark.pedantic(
        lambda: figure12(sizes=SWEEP_SIZES, seed=BENCH_SEED, store=RESULTS_STORE),
        rounds=1,
        iterations=1,
    )
    report_figure(benchmark, result)

    for row in result.rows:
        assert 0.001 < row["fast_overhead"] < 0.08
        assert 0.001 < row["normal_overhead"] < 0.08
        assert row["fast_overhead"] <= row["normal_overhead"] * 1.2
