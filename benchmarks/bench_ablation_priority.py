"""Ablation: the paper's priority rule vs simpler alternatives.

The paper argues that its rarity term (the probability of being evicted
from *all* suppliers' FIFO buffers, Eq. 8) is more informative than the
traditional ``1/n`` supplier-count rarity, and combines it with urgency via
``max`` (Eq. 9).  This ablation runs the full switch workload with the fast
algorithm under four priority policies and reports the resulting switch
times; the paper's policy should be at least as good as the alternatives.
"""

from conftest import BENCH_SEED, report_rows

from repro.core.fast_switch import FastSwitchAlgorithm
from repro.core.priority import PriorityPolicy
from repro.experiments.config import make_session_config
from repro.streaming.session import SwitchSession

ABLATION_NODES = 150


def _run_policy(policy: PriorityPolicy) -> dict:
    config = make_session_config(ABLATION_NODES, seed=BENCH_SEED, max_time=120.0)
    session = SwitchSession(
        config,
        algorithm_factory=lambda: FastSwitchAlgorithm(priority_policy=policy),
    )
    result = session.run()
    return {
        "policy": policy.value,
        "avg_switch_time": round(result.metrics.avg_switch_time, 3),
        "avg_finish_S1": round(result.metrics.avg_finish_old, 3),
        "last_prepare_S2": round(result.metrics.last_prepare_new, 3),
        "unfinished": result.metrics.unfinished,
    }


def test_ablation_priority_policies(benchmark):
    def run_all():
        return [
            _run_policy(policy)
            for policy in (
                PriorityPolicy.PAPER,
                PriorityPolicy.URGENCY_ONLY,
                PriorityPolicy.TRADITIONAL_RARITY,
                PriorityPolicy.SEQUENTIAL,
            )
        ]

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    report_rows(benchmark, "Ablation: priority policy (fast switch algorithm)", rows)

    by_policy = {row["policy"]: row for row in rows}
    assert all(row["unfinished"] == 0 for row in rows)
    # The paper's policy must not be materially worse than any alternative
    # (one scheduling period of tolerance).
    paper_time = by_policy["paper"]["avg_switch_time"]
    for row in rows:
        assert paper_time <= row["avg_switch_time"] + 1.5
